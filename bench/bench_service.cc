// SyncService throughput: many concurrent small reconciliation sessions
// against one shared server set, driven (a) one-session-at-a-time through
// blocking Reconcile calls — the pre-service status quo — and (b) through
// the SyncService's stepped state machines with the cross-session batch
// planner, Alice-message memoization and pooled decode scratches.
//
// The headline measurements (written to BENCH_service.json by `--json`):
//   * sessions/sec for both drivers and their ratio (the service must win
//     by coalescing + memoization alone; the box may be single-core),
//   * batch-planner occupancy: keys per coalesced flush vs the sharded
//     ApplyOps threshold — per-session batches are far below it, the
//     cross-session flushes must cross it,
//   * a sharding-threshold sweep over IbltBatchOptions::sharded_min_keys
//     (the runtime knob) showing where sharded flushes engage.

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/workload.h"
#include "hashing/random.h"
#include "net/multi_pump.h"
#include "net/net_pump.h"
#include "net/poller.h"
#include "net/stream_party.h"
#include "net/wire.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "service/sharded_service.h"
#include "service/sync_service.h"

namespace setrec {
namespace {

struct Workload {
  std::shared_ptr<const SetOfSets> server;
  std::vector<std::shared_ptr<const SetOfSets>> clients;
  SsrParams params;
  size_t known_d = 0;
  std::vector<SsrProtocolKind> kinds;
};

/// One shared server set; each client drifts from it by ~d element edits.
/// `force` pins every session to one protocol (for per-protocol rows);
/// by default the population is mixed, biased to the one-round families.
Workload MakeWorkload(size_t sessions, size_t children, size_t child_size,
                      size_t d, uint64_t seed,
                      std::optional<SsrProtocolKind> force = std::nullopt) {
  SsrWorkloadSpec spec;
  spec.num_children = children;
  spec.child_size = child_size;
  spec.changes = d;
  spec.seed = seed;
  SsrWorkload base = MakeSsrWorkload(spec);

  Workload w;
  w.server = std::make_shared<SetOfSets>(base.alice);
  w.params.max_child_size = child_size + d + 2;
  w.params.max_children = children + d;
  w.params.seed = seed * 77 + 1;
  w.known_d = d + 2;
  Rng rng(seed);
  w.clients.reserve(sessions);
  w.kinds.reserve(sessions);
  for (size_t i = 0; i < sessions; ++i) {
    SetOfSets bob = *w.server;
    for (size_t edit = 0; edit < d; ++edit) {
      size_t victim = rng.NextU64() % bob.size();
      if (edit % 2 == 0 && bob[victim].size() > 1) {
        bob[victim].erase(bob[victim].begin() +
                          static_cast<ptrdiff_t>(rng.NextU64() %
                                                 bob[victim].size()));
      } else {
        bob[victim].push_back((1ull << 42) + (rng.NextU64() & 0xfffff));
      }
    }
    w.clients.push_back(std::make_shared<SetOfSets>(
        Canonicalize(std::move(bob))));
    const uint64_t pick = rng.NextU64() % 10;
    w.kinds.push_back(force.has_value() ? *force
                      : pick < 3        ? SsrProtocolKind::kNaive
                      : pick < 7        ? SsrProtocolKind::kIblt2
                      : pick < 9        ? SsrProtocolKind::kCascade
                                        : SsrProtocolKind::kMultiRound);
  }
  return w;
}

struct DriverResult {
  double seconds = 0;
  size_t completed = 0;
  size_t failed = 0;
  size_t bytes = 0;
  size_t rounds = 0;
  ServiceStats service_stats;       // Service driver only.
  obs::MetricRegistry obs_metrics;  // Service driver only (empty when off).
};

DriverResult RunDirect(const Workload& w) {
  DriverResult r;
  r.seconds = bench::TimeSeconds([&] {
    for (size_t i = 0; i < w.clients.size(); ++i) {
      std::unique_ptr<SetsOfSetsProtocol> protocol =
          MakeSsrProtocol(w.kinds[i], w.params);
      Channel channel;
      Result<SsrOutcome> outcome = protocol->Reconcile(
          *w.server, *w.clients[i], w.known_d, &channel);
      if (outcome.ok()) {
        ++r.completed;
        r.bytes += outcome.value().stats.bytes;
        r.rounds += outcome.value().stats.rounds;
      } else {
        ++r.failed;
      }
    }
  });
  return r;
}

DriverResult RunService(const Workload& w, const IbltBatchOptions& batch,
                        size_t max_inflight = 0, bool metrics = true) {
  SyncServiceOptions options;
  options.batch = batch;
  options.max_inflight =
      max_inflight == 0 ? w.clients.size() : max_inflight;
  options.keep_recovered = false;
  options.metrics = metrics;
  SyncService service(options);
  service.RegisterSharedSet(w.server);
  DriverResult r;
  r.seconds = bench::TimeSeconds([&] {
    for (size_t i = 0; i < w.clients.size(); ++i) {
      SessionSpec session;
      session.protocol = w.kinds[i];
      session.params = w.params;
      session.alice = w.server;
      session.bob = w.clients[i];
      session.known_d = w.known_d;
      service.Submit(std::move(session));
    }
    service.RunToCompletion();
  });
  const ServiceStats& stats = service.stats();
  r.completed = stats.sessions_completed;
  r.failed = stats.sessions_failed;
  r.bytes = stats.total_bytes;
  r.rounds = stats.total_rounds;
  r.service_stats = stats;
  r.obs_metrics = service.metrics();
  return r;
}

/// The multi-core path: the same loopback workload through a
/// ShardedSyncService with `shards` driver threads.
DriverResult RunShardedService(const Workload& w,
                               const IbltBatchOptions& batch, size_t shards,
                               size_t max_inflight = 0) {
  ShardedSyncServiceOptions options;
  options.shards = shards;
  options.service.batch = batch;
  options.service.max_inflight =
      max_inflight == 0 ? w.clients.size() : max_inflight;
  options.service.keep_recovered = false;
  ShardedSyncService service(options);
  service.RegisterSharedSet(w.server);
  DriverResult r;
  r.seconds = bench::TimeSeconds([&] {
    for (size_t i = 0; i < w.clients.size(); ++i) {
      SessionSpec session;
      session.protocol = w.kinds[i];
      session.params = w.params;
      session.alice = w.server;
      session.bob = w.clients[i];
      session.known_d = w.known_d;
      service.Submit(std::move(session));
    }
    service.RunToCompletion();
  });
  const ServiceStats stats = service.AggregateStats();
  r.completed = stats.sessions_completed;
  r.failed = stats.sessions_failed;
  r.bytes = stats.total_bytes;
  r.rounds = stats.total_rounds;
  r.service_stats = stats;
  return r;
}

void PrintComparison(const char* name, const DriverResult& direct,
                     const DriverResult& service, size_t sessions,
                     const IbltBatchOptions& batch) {
  const double direct_rate = static_cast<double>(sessions) / direct.seconds;
  const double service_rate = static_cast<double>(sessions) / service.seconds;
  std::printf("%-22s %10.0f %10.0f %7.2fx   occ mean %7.0f max %7zu "
              "(thresh %zu, sharded %zu/%zu) cache %zu/%zu\n",
              name, direct_rate, service_rate, service_rate / direct_rate,
              service.service_stats.mean_flush_occupancy(),
              service.service_stats.max_flush_keys, batch.sharded_min_keys,
              service.service_stats.sharded_flushes,
              service.service_stats.flushes,
              service.service_stats.cache_hits,
              service.service_stats.cache_hits +
                  service.service_stats.cache_misses);
}

// ---------------------------------------------------------------------
// --net: split-party sessions over real sockets. The service hosts Alice
// halves behind a NetPump; a client thread drives Bob halves sequentially
// over per-session socketpairs. Reported: socket round-trips/sec (frames
// crossing the wire in either direction) and p50/p99 full-session latency
// (hello sent → outcome decoded at the client).
// ---------------------------------------------------------------------

struct NetBenchResult {
  size_t sessions = 0;
  size_t failed = 0;
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t wire_frames = 0;
  double round_trips_per_sec = 0;
  double sessions_per_sec = 0;
};

NetBenchResult RunNetBench(size_t sessions) {
  Workload w = MakeWorkload(sessions, /*children=*/48, /*child_size=*/8,
                            /*d=*/2, /*seed=*/77);
  SyncService service;
  service.RegisterSharedSet(w.server);
  NetPump pump(&service);

  std::vector<int> client_fds(sessions);
  for (size_t i = 0; i < sessions; ++i) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0 ||
        !pump.AdoptConnection(sv[0]).ok()) {
      std::fprintf(stderr, "bench_service --net: socketpair failed\n");
      std::exit(1);
    }
    client_fds[i] = sv[1];
    // Receive timeout so a wedged server session fails the client's read
    // (and the bench) instead of blocking client.join() forever.
    timeval timeout{30, 0};
    ::setsockopt(client_fds[i], SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof(timeout));
  }

  NetBenchResult r;
  r.sessions = sessions;
  // Client-side full-session latency: recorded into the obs histogram
  // (log-scale buckets, quantiles within one bucket of exact — the same
  // structure the service's own session metrics use). Single writer: only
  // the client thread records; join() sequences the read below.
  obs::LatencyHistogram latency;
  size_t client_failed = 0;
  r.seconds = bench::TimeSeconds([&] {
    std::thread client([&] {
      for (size_t i = 0; i < sessions; ++i) {
        const uint64_t start = obs::NowNanos();
        HelloSpec hello;
        hello.protocol = w.kinds[i];
        hello.set_id = 1;
        hello.params = w.params;
        hello.known_d = w.known_d;
        std::unique_ptr<SetsOfSetsProtocol> protocol =
            MakeSsrProtocol(w.kinds[i], w.params);
        Channel channel;
        bool ok = SendHello(client_fds[i], hello).ok();
        if (ok) {
          Result<SsrOutcome> outcome = RunBobHalfOverFd(
              *protocol, *w.clients[i], w.known_d, client_fds[i], &channel);
          ok = outcome.ok();
        }
        ::close(client_fds[i]);
        if (!ok) ++client_failed;
        latency.Record(obs::NowNanos() - start);
      }
    });
    // Bounded wait: a client that dies before its session is submitted
    // produces no SessionResult, and the bench must fail, not hang.
    size_t done = 0;
    size_t idle_spins = 0;
    while (done < sessions && idle_spins < 1200) {
      const size_t events = pump.PumpOnce(50);
      const size_t results = pump.TakeResults().size();
      done += results;
      idle_spins = (events == 0 && results == 0) ? idle_spins + 1 : 0;
    }
    client.join();
    r.failed = client_failed + (sessions - done);
  });

  r.p50_ms = static_cast<double>(latency.p50()) / 1e6;
  r.p99_ms = static_cast<double>(latency.p99()) / 1e6;
  r.wire_frames = pump.stats().frames_in + pump.stats().frames_out;
  r.round_trips_per_sec = static_cast<double>(r.wire_frames) / r.seconds;
  r.sessions_per_sec = static_cast<double>(sessions) / r.seconds;
  return r;
}

/// --shards sweep unit: the socketpair net workload against a MultiNetPump
/// (one pump thread per shard) with `shards` concurrent client threads, so
/// wire concurrency scales with the shard count being measured.
NetBenchResult RunShardedNetBench(size_t sessions, size_t shards) {
  Workload w = MakeWorkload(sessions, /*children=*/48, /*child_size=*/8,
                            /*d=*/2, /*seed=*/77);
  ShardedSyncServiceOptions service_options;
  service_options.shards = shards;
  service_options.spawn_threads = false;  // Pump threads drive the shards.
  ShardedSyncService service(service_options);
  service.RegisterSharedSet(w.server);
  MultiNetPumpOptions pump_options;
  pump_options.poll_timeout_ms = 20;
  MultiNetPump pump(&service, pump_options);

  std::vector<int> client_fds(sessions);
  for (size_t i = 0; i < sessions; ++i) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      std::fprintf(stderr, "bench_service --shards: socketpair failed\n");
      std::exit(1);
    }
    pump.AdoptConnection(sv[0]);
    client_fds[i] = sv[1];
    timeval timeout{30, 0};
    ::setsockopt(client_fds[i], SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof(timeout));
  }

  NetBenchResult r;
  r.sessions = sessions;
  // One histogram per client thread (single-writer), merged after join.
  std::vector<obs::LatencyHistogram> latency(shards);
  std::atomic<size_t> client_failed{0};
  r.seconds = bench::TimeSeconds([&] {
    pump.Start();
    std::vector<std::thread> clients;
    clients.reserve(shards);
    for (size_t t = 0; t < shards; ++t) {
      clients.emplace_back([&, t] {
        for (size_t i = t; i < sessions; i += shards) {
          const uint64_t start = obs::NowNanos();
          HelloSpec hello;
          hello.protocol = w.kinds[i];
          hello.set_id = 1;
          hello.params = w.params;
          hello.known_d = w.known_d;
          std::unique_ptr<SetsOfSetsProtocol> protocol =
              MakeSsrProtocol(w.kinds[i], w.params);
          Channel channel;
          bool ok = SendHello(client_fds[i], hello).ok();
          if (ok) {
            Result<SsrOutcome> outcome = RunBobHalfOverFd(
                *protocol, *w.clients[i], w.known_d, client_fds[i],
                &channel);
            ok = outcome.ok();
          }
          ::close(client_fds[i]);
          if (!ok) client_failed.fetch_add(1);
          latency[t].Record(obs::NowNanos() - start);
        }
      });
    }
    for (std::thread& c : clients) c.join();
    // Bounded wait for the last results to be harvested, then stop.
    for (int spin = 0; spin < 500 && pump.results_seen() < sessions;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    pump.Stop();
  });
  r.failed =
      client_failed.load() + (sessions - std::min(sessions,
                                                  pump.results_seen()));
  obs::LatencyHistogram merged;
  for (const obs::LatencyHistogram& h : latency) merged.Merge(h);
  r.p50_ms = static_cast<double>(merged.p50()) / 1e6;
  r.p99_ms = static_cast<double>(merged.p99()) / 1e6;
  const NetPumpStats stats = pump.AggregateStats();
  r.wire_frames = stats.frames_in + stats.frames_out;
  r.round_trips_per_sec = static_cast<double>(r.wire_frames) / r.seconds;
  r.sessions_per_sec = static_cast<double>(sessions) / r.seconds;
  return r;
}

// ---------------------------------------------------------------------
// --net-scale + the net.scaling JSON section: session latency as the
// pump carries 512 -> 2k -> 10k concurrent TCP connections.
//
// The swarm runs in a forked child, not a thread: RLIMIT_NOFILE here is
// hard-capped at 20000 and cannot be raised, so one process cannot hold
// both ends of 10k socketpairs. The child connects N clients and holds
// them idle pre-hello (the server disables its handshake timeout for
// this run — idle ballast is the point); a fixed 512-session set then
// runs the normal hello -> Bob-half path, and exact p50/p99 from the
// sorted samples come back over a pipe. The parent is the server: one
// NetPump over TCP, so the poller watches all N fds every wakeup.
// ---------------------------------------------------------------------

struct NetScalePoint {
  size_t connections = 0;
  size_t measured = 0;
  size_t failed = 0;
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t protocol_errors = 0;
  size_t poll_wakeups = 0;
  double mean_ready_per_wakeup = 0;
  const char* backend = "";
};

/// The swarm child's report, sent over its result pipe as raw bytes.
struct SwarmReport {
  uint64_t connected = 0;
  uint64_t failed = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  double seconds = 0;
};

bool ReadFull(int fd, void* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t r = ::read(fd, static_cast<char*>(buf) + off, n - off);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    off += static_cast<size_t>(r);
  }
  return true;
}

void WriteFull(int fd, const void* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, static_cast<const char*>(buf) + off, n - off);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return;
    off += static_cast<size_t>(w);
  }
}

[[noreturn]] void RunSwarmChild(const Workload& w, size_t connections,
                                size_t measured, int port_fd, int result_fd) {
  SwarmReport report{};
  uint16_t port = 0;
  if (ReadFull(port_fd, &port, sizeof port)) {
    ::close(port_fd);
    std::vector<int> fds;
    fds.reserve(connections);
    for (size_t i = 0; i < connections; ++i) {
      Result<int> fd = ConnectTcp("127.0.0.1", port);
      if (!fd.ok()) break;  // The parent counts the shortfall as failures.
      fds.push_back(fd.value());
    }
    report.connected = fds.size();
    std::vector<uint64_t> samples;
    if (fds.size() == connections) {
      samples.reserve(measured);
      const uint64_t swarm_start = obs::NowNanos();
      for (size_t i = 0; i < measured && i < fds.size(); ++i) {
        // A wedged server fails the read (and the point), never hangs it.
        timeval timeout{60, 0};
        ::setsockopt(fds[i], SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof timeout);
        const uint64_t start = obs::NowNanos();
        HelloSpec hello;
        hello.protocol = w.kinds[i];
        hello.set_id = 1;
        hello.params = w.params;
        hello.known_d = w.known_d;
        std::unique_ptr<SetsOfSetsProtocol> protocol =
            MakeSsrProtocol(w.kinds[i], w.params);
        Channel channel;
        bool ok = SendHello(fds[i], hello).ok();
        if (ok) {
          Result<SsrOutcome> outcome = RunBobHalfOverFd(
              *protocol, *w.clients[i], w.known_d, fds[i], &channel);
          ok = outcome.ok();
        }
        if (!ok) ++report.failed;
        samples.push_back(obs::NowNanos() - start);
      }
      report.seconds =
          static_cast<double>(obs::NowNanos() - swarm_start) / 1e9;
    }
    std::sort(samples.begin(), samples.end());
    if (!samples.empty()) {
      report.p50_ns = samples[samples.size() / 2];
      report.p99_ns =
          samples[std::min(samples.size() - 1, (samples.size() * 99) / 100)];
    }
    for (int fd : fds) ::close(fd);
  }
  WriteFull(result_fd, &report, sizeof report);
  ::close(result_fd);
  std::_Exit(0);  // Skip atexit/static destructors inherited from the parent.
}

NetScalePoint RunNetScalePoint(size_t connections, size_t measured) {
  NetScalePoint point;
  point.connections = connections;
  point.measured = measured;
  point.failed = connections;  // Until the child reports otherwise.
  Workload w = MakeWorkload(measured, /*children=*/48, /*child_size=*/8,
                            /*d=*/2, /*seed=*/77);
  int port_pipe[2], result_pipe[2];
  if (::pipe(port_pipe) != 0 || ::pipe(result_pipe) != 0) {
    std::fprintf(stderr, "bench_service --net-scale: pipe failed\n");
    return point;
  }
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t child = ::fork();
  if (child < 0) {
    std::fprintf(stderr, "bench_service --net-scale: fork failed\n");
    return point;
  }
  if (child == 0) {
    ::close(port_pipe[1]);
    ::close(result_pipe[0]);
    RunSwarmChild(w, connections, measured, port_pipe[0], result_pipe[1]);
  }
  ::close(port_pipe[0]);
  ::close(result_pipe[1]);

  // The pump is built only after the fork: the child must not inherit the
  // poller fd or the listener (its fd budget is the N client sockets).
  SyncService service;
  service.RegisterSharedSet(w.server);
  NetPumpOptions options;
  options.handshake_timeout_ms = 0;  // Idle pre-hello ballast is the point.
  options.idle_timeout_ms = 0;
  // The swarm connects thousands of sockets back-to-back; the default
  // backlog overflows and every overflow costs the child a 1s+ SYN
  // retransmit. The kernel clamps this to net.core.somaxconn.
  options.listen_backlog = 4096;
  NetPump pump(&service, options);
  Result<uint16_t> port = pump.ListenTcp(0);
  if (!port.ok()) {
    std::fprintf(stderr, "bench_service --net-scale: listen failed\n");
    ::close(port_pipe[1]);
    ::close(result_pipe[0]);
    ::waitpid(child, nullptr, 0);
    return point;
  }
  const uint16_t port_value = port.value();
  WriteFull(port_pipe[1], &port_value, sizeof port_value);
  ::close(port_pipe[1]);

  // Pump until the child's report arrives (read non-blocking between
  // passes), with a wall-clock ceiling so a dead child cannot hang us.
  ::fcntl(result_pipe[0], F_SETFL, O_NONBLOCK);
  SwarmReport report{};
  size_t got = 0;
  const uint64_t deadline = obs::NowNanos() + 300ull * 1'000'000'000;
  while (got < sizeof report && obs::NowNanos() < deadline) {
    pump.PumpOnce(10);
    (void)pump.TakeResults();
    ssize_t n = ::read(result_pipe[0], reinterpret_cast<char*>(&report) + got,
                       sizeof report - got);
    if (n > 0) {
      got += static_cast<size_t>(n);
    } else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR)) {
      break;
    }
  }
  ::close(result_pipe[0]);
  // The child closed every socket: reap them all before reading stats.
  for (int spin = 0; spin < 2000 && pump.connection_count() > 0; ++spin) {
    pump.PumpOnce(5);
    (void)pump.TakeResults();
  }
  int wait_status = 0;
  ::waitpid(child, &wait_status, 0);

  if (got == sizeof report) {
    point.failed = report.failed + (connections - report.connected);
  }
  point.seconds = report.seconds;
  point.p50_ms = static_cast<double>(report.p50_ns) / 1e6;
  point.p99_ms = static_cast<double>(report.p99_ns) / 1e6;
  point.protocol_errors = pump.stats().protocol_errors;
  point.poll_wakeups = pump.pump_metrics().poll_wakeups;
  const obs::LatencyHistogram& ready = pump.pump_metrics().ready_per_wakeup;
  point.mean_ready_per_wakeup =
      ready.count() > 0
          ? static_cast<double>(ready.sum()) / static_cast<double>(ready.count())
          : 0.0;
  point.backend = PollerKindName(pump.poller_kind());
  return point;
}

struct ShardSweepRow {
  size_t shards;
  double sessions_per_sec = 0;
  double seconds = 0;
  size_t failed = 0;
  NetBenchResult net;
};

/// One --shards row: the 10k mixed loopback workload through the sharded
/// service, plus the socketpair net workload through the multi-pump.
ShardSweepRow MeasureShardRow(const Workload& w, size_t shards,
                              size_t net_sessions) {
  IbltBatchOptions batch;
  ShardSweepRow row;
  row.shards = shards;
  DriverResult loopback = RunShardedService(w, batch, shards, 512);
  row.seconds = loopback.seconds;
  row.failed = loopback.failed;
  row.sessions_per_sec =
      static_cast<double>(w.clients.size()) / loopback.seconds;
  row.net = RunShardedNetBench(net_sessions, shards);
  return row;
}

// ---------------------------------------------------------------------
// Wire-codec byte accounting: identical workloads under WireCodec::kDense
// vs kSparse. Byte totals are deterministic functions of (workload, codec)
// — both drivers must agree on them bit for bit — so a single rep measures
// them exactly; only sessions/sec columns carry timing noise.
// ---------------------------------------------------------------------

struct WireRow {
  double dense_bytes_per_session = 0;
  double sparse_bytes_per_session = 0;

  double reduction() const {
    return sparse_bytes_per_session > 0
               ? dense_bytes_per_session / sparse_bytes_per_session
               : 0;
  }
};

Result<WireRow> MeasureWireBytes(Workload w) {
  WireRow row;
  const double sessions = static_cast<double>(w.clients.size());
  w.params.wire_codec = WireCodec::kDense;
  DriverResult dense = RunDirect(w);
  w.params.wire_codec = WireCodec::kSparse;
  DriverResult sparse = RunDirect(w);
  if (dense.failed != 0 || sparse.failed != 0) {
    return Unavailable("wire-bytes sessions failed");
  }
  row.dense_bytes_per_session = static_cast<double>(dense.bytes) / sessions;
  row.sparse_bytes_per_session = static_cast<double>(sparse.bytes) / sessions;
  return row;
}

// ---------------------------------------------------------------------
// Instrumentation overhead: how much the metrics layer costs the headline
// service driver. Two measurements, one stable and one honest:
//  * model: (instrumented events) x (measured clock-read + Record cost,
//    from a tight microbench loop) / runtime. Deterministic up to the
//    per-op cost, so the <=2% gate rides on it even on this noisy VM.
//  * A/B: min-of-reps seconds with options.metrics on vs off. Reported as
//    raw evidence; +-30% scheduler bursts make it unusable as a gate.
// ---------------------------------------------------------------------

struct ObsReport {
  double record_cost_ns = 0;     ///< One NowNanos + histogram Record.
  size_t histogram_samples = 0;  ///< Across the whole registry.
  double model_pct = 0;          ///< Modeled overhead, % of runtime.
  double ab_pct = 0;             ///< (min_on - min_off) / min_off, >= 0.
  double min_seconds_on = 0;
  double min_seconds_off = 0;
  size_t session_samples = 0;
  size_t round_samples = 0;
  size_t flush_samples = 0;
  size_t occupancy_samples = 0;
  double p50_session_ms = 0;
  double p99_session_ms = 0;
};

double MeasureRecordCostNs() {
  obs::LatencyHistogram h;
  constexpr int kIters = 1'000'000;
  const uint64_t t0 = obs::NowNanos();
  for (int i = 0; i < kIters; ++i) {
    h.Record(obs::NowNanos() - t0);
  }
  const uint64_t t1 = obs::NowNanos();
  return static_cast<double>(t1 - t0) / kIters;
}

size_t CountRegistrySamples(const obs::MetricRegistry& m) {
  size_t samples = m.opaque_session_latency.count() + m.flush_latency.count() +
                   m.flush_occupancy.count() + m.lease_wait.count() +
                   m.lease_hold.count();
  for (size_t k = 0; k < obs::kProtocolKinds; ++k) {
    for (size_t c = 0; c < obs::kWireCodecs; ++c) {
      samples += m.session_latency[k][c].count() + m.round_latency[k][c].count();
    }
  }
  return samples;
}

obs::LatencyHistogram MergedSessionLatency(const obs::MetricRegistry& m) {
  obs::LatencyHistogram all = m.opaque_session_latency;
  for (size_t k = 0; k < obs::kProtocolKinds; ++k) {
    for (size_t c = 0; c < obs::kWireCodecs; ++c) {
      all.Merge(m.session_latency[k][c]);
    }
  }
  return all;
}

/// Fills the model/derived fields of `r` from an instrumented run
/// (`on` = min-of-reps seconds with metrics enabled, `m` its registry).
void FinishObsReport(double on_seconds, double off_seconds,
                     const obs::MetricRegistry& m, ObsReport* r) {
  r->min_seconds_on = on_seconds;
  r->min_seconds_off = off_seconds;
  r->record_cost_ns = MeasureRecordCostNs();
  r->histogram_samples = CountRegistrySamples(m);
  // Most instrumented events pay one clock read + one Record; a round
  // boundary pays an extra clock read. 2x is a conservative per-sample
  // budget that still lands far under the gate.
  const double cost_ns =
      2.0 * r->record_cost_ns * static_cast<double>(r->histogram_samples);
  r->model_pct = on_seconds > 0 ? cost_ns / (on_seconds * 1e9) * 100.0 : 0;
  r->ab_pct = off_seconds > 0
                  ? std::max(0.0, (on_seconds - off_seconds) / off_seconds) *
                        100.0
                  : 0;
  obs::LatencyHistogram session = MergedSessionLatency(m);
  r->session_samples = session.count();
  size_t rounds = 0;
  for (size_t k = 0; k < obs::kProtocolKinds; ++k) {
    for (size_t c = 0; c < obs::kWireCodecs; ++c) {
      rounds += m.round_latency[k][c].count();
    }
  }
  r->round_samples = rounds;
  r->flush_samples = m.flush_latency.count();
  r->occupancy_samples = m.flush_occupancy.count();
  r->p50_session_ms = static_cast<double>(session.p50()) / 1e6;
  r->p99_session_ms = static_cast<double>(session.p99()) / 1e6;
}

/// The obs smoke gate (scripts/check.sh obs lane): every load-bearing
/// histogram saw samples, and the modeled overhead stays under 2%.
int CheckObsGate(const ObsReport& r) {
  int failures = 0;
  struct {
    const char* name;
    size_t samples;
  } rows[] = {{"session_latency", r.session_samples},
              {"round_latency", r.round_samples},
              {"flush_latency", r.flush_samples},
              {"flush_occupancy", r.occupancy_samples}};
  for (const auto& row : rows) {
    if (row.samples == 0) {
      std::fprintf(stderr, "bench_service: obs histogram %s has 0 samples\n",
                   row.name);
      ++failures;
    }
  }
  if (r.model_pct > 2.0) {
    std::fprintf(stderr,
                 "bench_service: obs overhead %.3f%% exceeds 2%% "
                 "(%zu samples x %.1f ns over %.3f s)\n",
                 r.model_pct, r.histogram_samples, r.record_cost_ns,
                 r.min_seconds_on);
    ++failures;
  }
  return failures;
}

bool FindJsonNumber(const std::string& text, const std::string& key,
                    double* out) {
  const size_t key_at = text.find("\"" + key + "\":");
  if (key_at == std::string::npos) return false;
  const size_t colon = text.find(':', key_at);
  if (colon == std::string::npos) return false;
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

/// --check-bytes[=PATH]: regression guard for CI / the verify skill.
/// Re-measures the standard 10k mixed workload's deterministic
/// bytes-per-session under both codecs and fails (exit 1) if either
/// regressed more than 5% against the committed BENCH_service.json.
int RunCheckBytes(const char* committed_path) {
  const size_t kSessions = 10'000;
  Workload w = MakeWorkload(kSessions, /*children=*/64, /*child_size=*/8,
                            /*d=*/2, /*seed=*/41);
  Result<WireRow> measured = MeasureWireBytes(std::move(w));
  if (!measured.ok()) {
    std::fprintf(stderr, "bench_service --check-bytes: %s\n",
                 measured.status().ToString().c_str());
    return 1;
  }

  std::FILE* f = std::fopen(committed_path, "r");
  if (f == nullptr) {
    std::fprintf(stderr,
                 "bench_service --check-bytes: cannot read %s "
                 "(run from the repo root, or pass --check-bytes=PATH)\n",
                 committed_path);
    return 1;
  }
  std::string committed;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    committed.append(chunk, n);
  }
  std::fclose(f);

  WireRow want;
  if (!FindJsonNumber(committed, "dense_bytes_per_session",
                      &want.dense_bytes_per_session) ||
      !FindJsonNumber(committed, "sparse_bytes_per_session",
                      &want.sparse_bytes_per_session)) {
    std::fprintf(stderr,
                 "bench_service --check-bytes: %s has no wire section "
                 "(regenerate with --json)\n",
                 committed_path);
    return 1;
  }

  constexpr double kTolerance = 1.05;  // >5% growth is a regression.
  int failures = 0;
  struct {
    const char* name;
    double now;
    double committed;
  } rows[] = {
      {"dense", measured.value().dense_bytes_per_session,
       want.dense_bytes_per_session},
      {"sparse", measured.value().sparse_bytes_per_session,
       want.sparse_bytes_per_session},
  };
  for (const auto& row : rows) {
    const bool ok = row.now <= row.committed * kTolerance;
    std::printf("%-7s %10.1f bytes/session  committed %10.1f  %s\n",
                row.name, row.now, row.committed,
                ok ? "ok" : "REGRESSED (>5%)");
    if (!ok) ++failures;
  }
  std::printf("reduction %.2fx (committed %.2fx)\n",
              measured.value().reduction(),
              want.dense_bytes_per_session / want.sparse_bytes_per_session);
  return failures == 0 ? 0 : 1;
}

int RunJsonSuite() {
  // The acceptance workload: 10k concurrent small sessions. Single-core
  // noisy VM with bursty interference: interleave the drivers and take the
  // MEDIAN of 5 reps each (a burst can land in either driver's rep; the
  // median discards it symmetrically, unlike best-of).
  const size_t kSessions = 10'000;
  const size_t kWindow = 512;
  const int kReps = 5;
  Workload w = MakeWorkload(kSessions, /*children=*/64, /*child_size=*/8,
                            /*d=*/2, /*seed=*/41);

  IbltBatchOptions batch;  // Library default threshold (64k keys).
  std::vector<DriverResult> direct_reps;
  std::vector<DriverResult> service_reps;
  std::vector<double> service_off_secs;
  for (int rep = 0; rep < kReps; ++rep) {
    direct_reps.push_back(RunDirect(w));
    service_reps.push_back(RunService(w, batch, kWindow));
    // Metrics-off contrast rep, interleaved so bursts land on every arm.
    if (rep < 3) {
      service_off_secs.push_back(
          RunService(w, batch, kWindow, /*metrics=*/false).seconds);
    }
  }
  auto by_seconds = [](const DriverResult& a, const DriverResult& b) {
    return a.seconds < b.seconds;
  };
  std::sort(direct_reps.begin(), direct_reps.end(), by_seconds);
  std::sort(service_reps.begin(), service_reps.end(), by_seconds);
  DriverResult direct = direct_reps[kReps / 2];
  DriverResult service = service_reps[kReps / 2];
  if (direct.failed != 0 || service.failed != 0) {
    std::fprintf(stderr, "bench_service: %zu direct / %zu service failures\n",
                 direct.failed, service.failed);
    return 1;
  }
  if (direct.bytes != service.bytes || direct.rounds != service.rounds) {
    std::fprintf(stderr,
                 "bench_service: transcript totals diverged "
                 "(direct %zu B / %zu rounds, service %zu B / %zu rounds)\n",
                 direct.bytes, direct.rounds, service.bytes, service.rounds);
    return 1;
  }
  const double direct_rate = static_cast<double>(kSessions) / direct.seconds;
  const double service_rate = static_cast<double>(kSessions) / service.seconds;

  // Threshold sweep on a smaller population (the knob is runtime-tunable;
  // occupancy is deterministic, timing is the noisy column).
  struct SweepRow {
    size_t threshold;
    double seconds;
    size_t sharded;
    size_t flushes;
    size_t max_keys;
  };
  std::vector<SweepRow> sweep;
  Workload sw = MakeWorkload(2000, 64, 8, 2, 43);
  for (size_t threshold : {size_t{4} << 10, size_t{16} << 10, size_t{64} << 10,
                           size_t{256} << 10}) {
    IbltBatchOptions sweep_batch;
    sweep_batch.sharded_min_keys = threshold;
    DriverResult row = RunService(sw, sweep_batch, kWindow);
    sweep.push_back({threshold, row.seconds,
                     row.service_stats.sharded_flushes,
                     row.service_stats.flushes,
                     row.service_stats.max_flush_keys});
  }

  char buf[512];
  std::string json = "{\n  \"bench\": \"service\",\n";
  std::snprintf(
      buf, sizeof buf,
      "  \"workload\": {\"sessions\": %zu, \"children\": 64, "
      "\"child_size\": 8, \"d\": 2, \"window\": %zu, \"protocol_mix\": "
      "\"naive:3 iblt2:4 cascade:2 multiround:1\", \"median_of\": 5},\n",
      kSessions, kWindow);
  json += buf;
  std::snprintf(
      buf, sizeof buf,
      "  \"direct\": {\"sessions_per_sec\": %.0f, \"seconds\": %.3f, "
      "\"bytes\": %zu, \"rounds\": %zu},\n",
      direct_rate, direct.seconds, direct.bytes, direct.rounds);
  json += buf;
  const ServiceStats& stats = service.service_stats;
  std::snprintf(
      buf, sizeof buf,
      "  \"service\": {\"sessions_per_sec\": %.0f, \"seconds\": %.3f, "
      "\"bytes\": %zu, \"rounds\": %zu, \"speedup\": %.2f,\n"
      "    \"flushes\": %zu, \"mean_flush_keys\": %.0f, "
      "\"max_flush_keys\": %zu,\n"
      "    \"sharded_min_keys\": %zu, \"sharded_flushes\": %zu,\n"
      "    \"cache_hits\": %zu, \"cache_misses\": %zu, "
      "\"estimator_jobs\": %zu, \"resumes\": %zu, \"steps\": %zu},\n",
      service_rate, service.seconds, service.bytes, service.rounds,
      service_rate / direct_rate, stats.flushes,
      stats.mean_flush_occupancy(), stats.max_flush_keys,
      batch.sharded_min_keys, stats.sharded_flushes, stats.cache_hits,
      stats.cache_misses, stats.estimator_jobs, stats.resumes, stats.steps);
  json += buf;
  json += "  \"threshold_sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::snprintf(
        buf, sizeof buf,
        "    {\"sharded_min_keys\": %zu, \"seconds\": %.3f, "
        "\"sharded_flushes\": %zu, \"flushes\": %zu, "
        "\"max_flush_keys\": %zu}%s\n",
        sweep[i].threshold, sweep[i].seconds, sweep[i].sharded,
        sweep[i].flushes, sweep[i].max_keys,
        i + 1 < sweep.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";

  // Split-party sessions over real sockets (the src/net/ pump).
  NetBenchResult net = RunNetBench(/*sessions=*/512);
  if (net.failed != 0) {
    std::fprintf(stderr, "bench_service: %zu net sessions failed\n",
                 net.failed);
    return 1;
  }
  std::snprintf(
      buf, sizeof buf,
      "  \"net\": {\"sessions\": %zu, \"transport\": \"socketpair\", "
      "\"seconds\": %.3f, \"sessions_per_sec\": %.0f,\n"
      "    \"round_trips_per_sec\": %.0f, \"wire_frames\": %zu, "
      "\"p50_session_ms\": %.3f, \"p99_session_ms\": %.3f,\n",
      net.sessions, net.seconds, net.sessions_per_sec,
      net.round_trips_per_sec, net.wire_frames, net.p50_ms, net.p99_ms);
  json += buf;

  // Concurrent-connection sweep: the same measured-session set under
  // growing idle-connection ballast. The headline claim is the flat p99 —
  // poller cost per wakeup must not grow with watched (quiet) fds.
  json += "    \"scaling\": [\n";
  const size_t scale_points[] = {512, 2048, 10240};
  std::vector<NetScalePoint> scaling;
  for (size_t connections : scale_points) {
    scaling.push_back(RunNetScalePoint(connections, /*measured=*/512));
    const NetScalePoint& p = scaling.back();
    if (p.failed != 0 || p.protocol_errors != 0) {
      std::fprintf(stderr,
                   "bench_service: net scaling failures at %zu connections "
                   "(%zu failed, %zu protocol errors)\n",
                   connections, p.failed, p.protocol_errors);
      return 1;
    }
    std::printf("net-scale %5zu conns  p50 %.2fms p99 %.2fms  "
                "(%s, %.1f ready/wakeup)\n",
                p.connections, p.p50_ms, p.p99_ms, p.backend,
                p.mean_ready_per_wakeup);
    std::snprintf(
        buf, sizeof buf,
        "      {\"connections\": %zu, \"measured_sessions\": %zu, "
        "\"seconds\": %.3f, \"backend\": \"%s\",\n"
        "       \"p50_session_ms\": %.3f, \"p99_session_ms\": %.3f, "
        "\"poll_wakeups\": %zu, \"mean_ready_per_wakeup\": %.2f}%s\n",
        p.connections, p.measured, p.seconds, p.backend, p.p50_ms, p.p99_ms,
        p.poll_wakeups, p.mean_ready_per_wakeup,
        connections == scale_points[2] ? "" : ",");
    json += buf;
  }
  std::snprintf(buf, sizeof buf,
                "    ],\n    \"p99_flatness_10k_over_512\": %.2f},\n",
                scaling.back().p99_ms / std::max(0.001, scaling.front().p99_ms));
  json += buf;

  // Wire-codec byte accounting at the acceptance workload: the dense
  // numbers come from the timed suite above; one sparse direct rep pins
  // the (deterministic) sparse bytes, and a sparse service rep both
  // cross-checks the totals and gives an indicative sparse rate.
  Workload sparse_w = w;
  sparse_w.params.wire_codec = WireCodec::kSparse;
  DriverResult sparse_direct = RunDirect(sparse_w);
  DriverResult sparse_service = RunService(sparse_w, batch, kWindow);
  if (sparse_direct.failed != 0 || sparse_service.failed != 0 ||
      sparse_direct.bytes != sparse_service.bytes) {
    std::fprintf(stderr,
                 "bench_service: sparse codec divergence "
                 "(%zu/%zu failures, direct %zu B vs service %zu B)\n",
                 sparse_direct.failed, sparse_service.failed,
                 sparse_direct.bytes, sparse_service.bytes);
    return 1;
  }
  const double dense_bps =
      static_cast<double>(direct.bytes) / static_cast<double>(kSessions);
  const double sparse_bps = static_cast<double>(sparse_direct.bytes) /
                            static_cast<double>(kSessions);
  std::snprintf(
      buf, sizeof buf,
      "  \"wire\": {\"sessions\": %zu, "
      "\"dense_bytes_per_session\": %.1f, "
      "\"sparse_bytes_per_session\": %.1f, \"reduction\": %.2f,\n"
      "    \"sparse_service_sessions_per_sec\": %.0f,\n",
      kSessions, dense_bps, sparse_bps, dense_bps / sparse_bps,
      static_cast<double>(kSessions) / sparse_service.seconds);
  json += buf;
  json += "    \"per_protocol\": [\n";
  for (int kind = 0; kind < 4; ++kind) {
    Result<WireRow> row = MeasureWireBytes(
        MakeWorkload(2000, 48, 8, 2, 21 + static_cast<uint64_t>(kind),
                     static_cast<SsrProtocolKind>(kind)));
    if (!row.ok()) {
      std::fprintf(stderr, "bench_service: per-protocol wire row failed\n");
      return 1;
    }
    std::snprintf(
        buf, sizeof buf,
        "      {\"protocol\": \"%s\", \"dense_bytes_per_session\": %.1f, "
        "\"sparse_bytes_per_session\": %.1f, \"reduction\": %.2f}%s\n",
        SsrProtocolKindName(static_cast<SsrProtocolKind>(kind)),
        row.value().dense_bytes_per_session,
        row.value().sparse_bytes_per_session, row.value().reduction(),
        kind + 1 < 4 ? "," : "");
    json += buf;
  }
  json += "    ],\n";
  json +=
      "    \"note\": \"8-byte cell checksums are uniform hashes "
      "(incompressible), which floors the reduction; naive compresses "
      "best (zero-suppressed key bytes), multiround's fingerprint tables "
      "ride the raw fallback\"},\n";

  // Shard-count sweep: the same 10k mixed workload through the
  // ShardedSyncService at 1, 2, 4, ... shards (always through 4 so the
  // row set is comparable across machines; hardware_concurrency says how
  // many of those shard counts have real cores behind them on THIS box).
  const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
  std::vector<size_t> shard_counts{1, 2, 4};
  for (size_t s = 8; s <= hc; s *= 2) shard_counts.push_back(s);
  std::vector<ShardSweepRow> shard_rows;
  for (size_t shards : shard_counts) {
    shard_rows.push_back(MeasureShardRow(w, shards, /*net_sessions=*/512));
    const ShardSweepRow& row = shard_rows.back();
    if (row.failed != 0 || row.net.failed != 0) {
      std::fprintf(stderr,
                   "bench_service: shard sweep failures at shards=%zu "
                   "(%zu loopback, %zu net)\n",
                   shards, row.failed, row.net.failed);
      return 1;
    }
    std::printf("shards=%zu  %8.0f sessions/sec  net %.0f round-trips/sec "
                "p50 %.2fms p99 %.2fms\n",
                row.shards, row.sessions_per_sec,
                row.net.round_trips_per_sec, row.net.p50_ms, row.net.p99_ms);
  }
  std::snprintf(buf, sizeof buf,
                "  \"sharded\": {\"hardware_concurrency\": %u, "
                "\"workload_sessions\": %zu, \"net_sessions\": 512,\n"
                "    \"sweep\": [\n",
                hc, kSessions);
  json += buf;
  for (size_t i = 0; i < shard_rows.size(); ++i) {
    const ShardSweepRow& row = shard_rows[i];
    std::snprintf(
        buf, sizeof buf,
        "      {\"shards\": %zu, \"sessions_per_sec\": %.0f, "
        "\"seconds\": %.3f,\n"
        "       \"net\": {\"sessions_per_sec\": %.0f, "
        "\"round_trips_per_sec\": %.0f, \"p50_session_ms\": %.3f, "
        "\"p99_session_ms\": %.3f}}%s\n",
        row.shards, row.sessions_per_sec, row.seconds,
        row.net.sessions_per_sec, row.net.round_trips_per_sec,
        row.net.p50_ms, row.net.p99_ms,
        i + 1 < shard_rows.size() ? "," : "");
    json += buf;
  }
  std::snprintf(buf, sizeof buf,
                "    ],\n    \"speedup_4_over_1\": %.2f},\n",
                shard_rows[2].sessions_per_sec /
                    shard_rows[0].sessions_per_sec);
  json += buf;

  // Instrumentation overhead on the headline run (which keeps metrics ON
  // — the committed speedup band includes the cost being measured here).
  ObsReport obs_report;
  FinishObsReport(service_reps[0].seconds,
                  *std::min_element(service_off_secs.begin(),
                                    service_off_secs.end()),
                  service.obs_metrics, &obs_report);
  std::snprintf(
      buf, sizeof buf,
      "  \"obs\": {\"metrics_enabled\": true, \"record_cost_ns\": %.1f, "
      "\"overhead_model_pct\": %.4f,\n"
      "    \"ab_min_seconds_on\": %.3f, \"ab_min_seconds_off\": %.3f, "
      "\"ab_delta_pct\": %.2f,\n"
      "    \"histogram_samples\": {\"total\": %zu, \"session\": %zu, "
      "\"round\": %zu, \"flush\": %zu, \"flush_occupancy\": %zu},\n"
      "    \"session_latency_ms\": {\"p50\": %.3f, \"p99\": %.3f}}\n",
      obs_report.record_cost_ns, obs_report.model_pct,
      obs_report.min_seconds_on, obs_report.min_seconds_off,
      obs_report.ab_pct, obs_report.histogram_samples,
      obs_report.session_samples, obs_report.round_samples,
      obs_report.flush_samples, obs_report.occupancy_samples,
      obs_report.p50_session_ms, obs_report.p99_session_ms);
  json += buf;
  json += "}\n";
  if (CheckObsGate(obs_report) != 0) return 1;

  std::FILE* f = std::fopen("BENCH_service.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_service: cannot write BENCH_service.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("direct  %8.0f sessions/sec\nservice %8.0f sessions/sec "
              "(%.2fx)\nmax flush occupancy %zu keys (threshold %zu, "
              "%zu/%zu sharded flushes)\n"
              "net     %8.0f sessions/sec over socketpair "
              "(%.0f round-trips/sec, p50 %.2fms, p99 %.2fms)\n"
              "wrote BENCH_service.json\n",
              direct_rate, service_rate, service_rate / direct_rate,
              stats.max_flush_keys, batch.sharded_min_keys,
              stats.sharded_flushes, stats.flushes, net.sessions_per_sec,
              net.round_trips_per_sec, net.p50_ms, net.p99_ms);
  return 0;
}

/// The headline 10k direct-vs-service comparison alone (median of 3,
/// interleaved) — a fast signal for perf work, without the sweeps the
/// full --json suite runs.
int RunQuickSuite() {
  const size_t kSessions = 10'000;
  const int kReps = 3;
  Workload w = MakeWorkload(kSessions, /*children=*/64, /*child_size=*/8,
                            /*d=*/2, /*seed=*/41);
  IbltBatchOptions batch;
  std::vector<double> direct_secs, service_secs, off_secs;
  obs::MetricRegistry metrics;
  for (int rep = 0; rep < kReps; ++rep) {
    direct_secs.push_back(RunDirect(w).seconds);
    DriverResult on = RunService(w, batch, 512);
    service_secs.push_back(on.seconds);
    metrics = on.obs_metrics;
    off_secs.push_back(RunService(w, batch, 512, /*metrics=*/false).seconds);
  }
  std::sort(direct_secs.begin(), direct_secs.end());
  std::sort(service_secs.begin(), service_secs.end());
  const double direct_rate =
      static_cast<double>(kSessions) / direct_secs[kReps / 2];
  const double service_rate =
      static_cast<double>(kSessions) / service_secs[kReps / 2];
  std::printf("direct  %8.0f sessions/sec\nservice %8.0f sessions/sec "
              "(%.2fx)\n",
              direct_rate, service_rate, service_rate / direct_rate);

  ObsReport obs_report;
  FinishObsReport(service_secs.front(),
                  *std::min_element(off_secs.begin(), off_secs.end()),
                  metrics, &obs_report);
  std::printf("obs     %zu histogram samples (session %zu, round %zu, "
              "flush %zu/%zu), overhead %.3f%% modeled "
              "(%.1f ns/record), A/B delta %.1f%%\n",
              obs_report.histogram_samples, obs_report.session_samples,
              obs_report.round_samples, obs_report.flush_samples,
              obs_report.occupancy_samples, obs_report.model_pct,
              obs_report.record_cost_ns, obs_report.ab_pct);
  return CheckObsGate(obs_report) == 0 ? 0 : 1;
}

int RunShardsSuite(size_t shards) {
  bench::Header("service --shards",
                "10k mixed sessions through the sharded service");
  const size_t kSessions = 10'000;
  Workload w = MakeWorkload(kSessions, /*children=*/64, /*child_size=*/8,
                            /*d=*/2, /*seed=*/41);
  ShardSweepRow row = MeasureShardRow(w, shards, /*net_sessions=*/512);
  std::printf("shards                %zu (hardware_concurrency %u)\n",
              row.shards, std::thread::hardware_concurrency());
  std::printf("loopback sessions/sec %.0f (%zu sessions, %zu failed)\n",
              row.sessions_per_sec, kSessions, row.failed);
  std::printf("net sessions/sec      %.0f (512 sessions, %zu failed)\n",
              row.net.sessions_per_sec, row.net.failed);
  std::printf("net round-trips/sec   %.0f\n", row.net.round_trips_per_sec);
  std::printf("net latency           p50 %.3f ms, p99 %.3f ms\n",
              row.net.p50_ms, row.net.p99_ms);
  return (row.failed == 0 && row.net.failed == 0) ? 0 : 1;
}

int RunNetSuite() {
  bench::Header("service --net",
                "split-party sessions over real sockets (NetPump)");
  NetBenchResult net = RunNetBench(/*sessions=*/512);
  std::printf("sessions      %zu (%zu failed)\n", net.sessions, net.failed);
  std::printf("sessions/sec  %.0f\n", net.sessions_per_sec);
  std::printf("round-trips   %zu frames, %.0f round-trips/sec\n",
              net.wire_frames, net.round_trips_per_sec);
  std::printf("latency       p50 %.3f ms, p99 %.3f ms (hello -> outcome)\n",
              net.p50_ms, net.p99_ms);
  return net.failed == 0 ? 0 : 1;
}

/// --net-scale=N: one sweep point as a CI gate — N concurrent connections
/// must carry the measured sessions with zero failures, zero protocol
/// errors, and a sane p99 (the bound is generous: it catches a poller
/// melting under fd count, not scheduler noise).
int RunNetScaleSuite(size_t connections) {
  bench::Header("service --net-scale",
                "session latency under concurrent-connection ballast");
  const size_t measured = std::min<size_t>(connections, 512);
  NetScalePoint p = RunNetScalePoint(connections, measured);
  std::printf("connections     %zu (%zu measured sessions, %zu failed)\n",
              p.connections, p.measured, p.failed);
  std::printf("backend         %s\n", p.backend);
  std::printf("latency         p50 %.3f ms, p99 %.3f ms\n", p.p50_ms,
              p.p99_ms);
  std::printf("poller          %zu wakeups, %.2f mean ready fds/wakeup\n",
              p.poll_wakeups, p.mean_ready_per_wakeup);
  std::printf("protocol errors %zu\n", p.protocol_errors);
  const double kP99CeilingMs = 500.0;
  if (p.failed != 0 || p.protocol_errors != 0) {
    std::fprintf(stderr, "bench_service --net-scale: FAILED (errors)\n");
    return 1;
  }
  if (p.p99_ms > kP99CeilingMs) {
    std::fprintf(stderr,
                 "bench_service --net-scale: FAILED (p99 %.1f ms > %.0f ms)\n",
                 p.p99_ms, kP99CeilingMs);
    return 1;
  }
  return 0;
}

void RunTableSuite() {
  bench::Header("service", "sessions/sec: direct loop vs SyncService");
  std::printf("%-22s %10s %10s %8s\n", "workload", "direct/s", "service/s",
              "speedup");
  IbltBatchOptions batch;
  for (int kind = 0; kind < 4; ++kind) {
    Workload w = MakeWorkload(2000, 48, 8, 2, static_cast<uint64_t>(21 + kind),
                              static_cast<SsrProtocolKind>(kind));
    DriverResult direct = RunDirect(w);
    DriverResult service = RunService(w, batch, 1024);
    char name[64];
    std::snprintf(name, sizeof name, "pure %s",
                  SsrProtocolKindName(static_cast<SsrProtocolKind>(kind)));
    PrintComparison(name, direct, service, 2000, batch);
  }
  for (size_t sessions : {size_t{2000}}) {
    for (size_t children : {size_t{48}}) {
      Workload w = MakeWorkload(sessions, children, 8, 2, 11 + sessions);
      DriverResult direct = RunDirect(w);
      for (size_t window : {size_t{256}, size_t{1024}, size_t{0}}) {
        DriverResult service = RunService(w, batch, window);
        char name[64];
        std::snprintf(name, sizeof name, "k=%zu s=%zu w=%zu", sessions,
                      children, window == 0 ? sessions : window);
        PrintComparison(name, direct, service, sessions, batch);
      }
    }
  }
  std::printf(
      "\nExpected shape: service >= 1.5x direct (Alice-message memoization\n"
      "+ coalesced planner flushes + pooled scratches); max occupancy far\n"
      "above any single session's per-batch key count.\n");
}

}  // namespace
}  // namespace setrec

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return setrec::RunJsonSuite();
    }
    if (std::strcmp(argv[i], "--net") == 0) {
      return setrec::RunNetSuite();
    }
    if (std::strcmp(argv[i], "--quick") == 0) {
      return setrec::RunQuickSuite();
    }
    if (std::strcmp(argv[i], "--check-bytes") == 0) {
      return setrec::RunCheckBytes("BENCH_service.json");
    }
    if (std::strncmp(argv[i], "--check-bytes=", 14) == 0) {
      return setrec::RunCheckBytes(argv[i] + 14);
    }
    if (std::strncmp(argv[i], "--net-scale=", 12) == 0) {
      const long connections = std::strtol(argv[i] + 12, nullptr, 10);
      if (connections < 1 || connections > 16000) {
        std::fprintf(stderr, "bench_service: bad --net-scale value "
                             "(fd budget tops out near 16k)\n");
        return 1;
      }
      return setrec::RunNetScaleSuite(static_cast<size_t>(connections));
    }
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      const long shards = std::strtol(argv[i] + 9, nullptr, 10);
      if (shards < 1 || shards > 256) {
        std::fprintf(stderr, "bench_service: bad --shards value\n");
        return 1;
      }
      return setrec::RunShardsSuite(static_cast<size_t>(shards));
    }
  }
  setrec::RunTableSuite();
  return 0;
}
