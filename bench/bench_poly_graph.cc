// Experiment E9 (DESIGN.md): Theorem 4.3 — small-graph reconciliation via
// polynomial fingerprints of canonical forms, against the Theorem 4.4 lower
// bound Ω(d log n) as the reference line. Communication is a constant 16
// bytes (one field point + one evaluation, q = 2^61-1 dominating n^{2d+3}
// at these sizes); computation explodes as O(n^{2d}) canonicalizations —
// the reason Section 5 exists.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "graph/isomorphism.h"
#include "graph/poly_signature.h"
#include "hashing/random.h"

namespace setrec {
namespace {

void Run(size_t n, size_t d) {
  int success = 0;
  size_t bytes = 0;
  double ms = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    Rng rng(n * 100 + d * 10 + static_cast<size_t>(t));
    Graph base = Graph::RandomGnp(n, 0.4, &rng);
    Graph alice = base, bob = base;
    alice.Perturb(d - d / 2, &rng);
    bob.Perturb(d / 2, &rng);
    Channel ch;
    Result<Graph> rec(Status(StatusCode::kExhausted, "x"));
    ms += 1e3 * bench::TimeSeconds(
                    [&] {
                      rec = PolyGraphReconcile(alice, bob, d,
                                               static_cast<uint64_t>(t), &ch);
                    });
    if (rec.ok() && IsIsomorphic(rec.value(), alice).value()) {
      ++success;
      bytes += ch.total_bytes();
    }
  }
  const double lower_bound_bits =
      static_cast<double>(d) * std::log2(static_cast<double>(n));
  std::printf("%4zu %4zu %8d%% %10zu %12.1f %14.1f\n", n, d,
              success * 100 / trials,
              success ? bytes / static_cast<size_t>(success) : 0,
              ms / trials, lower_bound_bits / 8);
}

}  // namespace
}  // namespace setrec

int main() {
  setrec::bench::Header("E9 / Thm 4.3 vs Thm 4.4",
                        "polynomial graph reconciliation (small graphs)");
  std::printf("%4s %4s %9s %10s %12s %14s\n", "n", "d", "success", "bytes",
              "ms", "Thm4.4_lb_B");
  for (size_t n : {5u, 6u, 7u}) {
    for (size_t d : {1u, 2u}) {
      setrec::Run(n, d);
    }
  }
  setrec::Run(7, 3);
  std::printf(
      "\nExpected shapes: bytes constant (16B, within a small constant of\n"
      "the Omega(d log n) lower bound); time grows ~n^{2d} — communication-\n"
      "optimal but computationally hopeless beyond toy sizes, motivating\n"
      "the Section 5 signature schemes.\n");
  return 0;
}
