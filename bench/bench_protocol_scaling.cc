// Experiment E6 (DESIGN.md): scaling shapes of Theorems 3.3 / 3.5 / 3.7 /
// 3.9 and the SSRU round counts of Thm 3.4 / Cor 3.6 / Cor 3.8 / Thm 3.10.
// Three sweeps vary d, s and h one at a time and report communication per
// protocol; a fourth reports SSRU rounds. The shapes to check:
//   vs d: naive grows ~d (whole children), iblt2 ~d^2 (d-hat * d), cascade
//         ~d log d, multiround ~d.
//   vs h: naive grows linearly in h; the sketch-based protocols are ~flat.
//   vs s: all protocols ~flat in s (only hash widths grow).
//   SSRU rounds: naive 2, iblt2/cascade O(log d), multiround 4.

#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "bench/bench_util.h"
#include "core/cascading_protocol.h"
#include "core/iblt_of_iblts.h"
#include "core/multiround_protocol.h"
#include "core/naive_protocol.h"
#include "core/workload.h"

namespace setrec {
namespace {

struct Row {
  size_t bytes[4];
  size_t rounds[4];
  bool ok[4];
};

Row RunAll(size_t s, size_t h, size_t d, bool known, uint64_t seed) {
  SsrWorkloadSpec spec;
  spec.num_children = s;
  spec.child_size = h;
  spec.changes = d;
  spec.universe = 1ull << 48;
  spec.seed = seed;
  SsrWorkload w = MakeSsrWorkload(spec);

  SsrParams params;
  params.max_child_size = h + d + 2;
  params.max_children = s + d;
  params.seed = seed + 7;
  std::unique_ptr<SetsOfSetsProtocol> protocols[4] = {
      std::make_unique<NaiveProtocol>(params),
      std::make_unique<IbltOfIbltsProtocol>(params),
      std::make_unique<CascadingProtocol>(params),
      std::make_unique<MultiRoundProtocol>(params)};
  Row row{};
  for (int i = 0; i < 4; ++i) {
    Channel ch;
    std::optional<size_t> kd =
        known ? std::optional<size_t>(w.applied_changes) : std::nullopt;
    Result<SsrOutcome> out = protocols[i]->Reconcile(w.alice, w.bob, kd, &ch);
    row.bytes[i] = ch.total_bytes();
    row.rounds[i] = ch.rounds();
    row.ok[i] = out.ok() && out.value().recovered == Canonicalize(w.alice);
  }
  return row;
}

void PrintRow(const char* label, size_t value, const Row& row, bool rounds) {
  std::printf("%-4s=%-6zu", label, value);
  for (int i = 0; i < 4; ++i) {
    if (rounds) {
      std::printf(" %9zu%s", row.rounds[i], row.ok[i] ? " " : "!");
    } else {
      std::printf(" %9zu%s", row.bytes[i], row.ok[i] ? " " : "!");
    }
  }
  std::printf("\n");
}

void HeaderRow() {
  std::printf("%-11s %10s %10s %10s %10s\n", "", "naive", "iblt2", "cascade",
              "multiround");
}

}  // namespace
}  // namespace setrec

int main() {
  using namespace setrec;
  bench::Header("E6 / Thms 3.3-3.10", "SSR communication scaling (bytes)");

  std::printf("\nsweep d (s=96, h=96, SSRK):\n");
  HeaderRow();
  for (size_t d : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    PrintRow("d", d, RunAll(96, 96, d, true, 10 + d), false);
  }

  std::printf("\nsweep h (s=64, d=8, SSRK):\n");
  HeaderRow();
  for (size_t h : {16u, 32u, 64u, 128u, 256u, 512u}) {
    PrintRow("h", h, RunAll(64, h, 8, true, 100 + h), false);
  }

  std::printf("\nsweep s (h=64, d=8, SSRK):\n");
  HeaderRow();
  for (size_t s : {16u, 32u, 64u, 128u, 256u, 512u}) {
    PrintRow("s", s, RunAll(s, 64, 8, true, 200 + s), false);
  }

  std::printf("\nSSRU rounds (s=64, h=64):\n");
  HeaderRow();
  for (size_t d : {1u, 4u, 16u, 64u}) {
    PrintRow("d", d, RunAll(64, 64, d, false, 300 + d), true);
  }

  std::printf(
      "\nExpected shapes: naive ~flat in d until d-hat saturates but linear\n"
      "in h; iblt2 superlinear in d (d-hat * d cells); cascade ~d log d and\n"
      "h-independent once h > d; multiround smallest and ~linear in d.\n"
      "SSRU rounds: naive 2, multiround 4, iblt2/cascade grow ~log d.\n");
  return 0;
}
