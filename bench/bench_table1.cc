// Experiment E1 (DESIGN.md): regenerates Table 1 of the paper — the SSRK
// protocol comparison in the dense binary-database regime h = Theta(u),
// n = Theta(s*u), d <= s, h. The paper's table reports asymptotic
// communication/time/rounds; we report measured bytes, wall time and rounds
// for each protocol and check the orderings the table implies:
//   communication: Thm 3.3 (naive) > Thm 3.5 (iblt2) > Thm 3.7 (cascade)
//                  > Thm 3.9 (multiround), for large u and small d;
//   rounds:        1 / 1 / 1 / 3;
//   time:          naive fastest per byte-touched; multiround pays d^2/d^3
//                  terms in its per-child work.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/cascading_protocol.h"
#include "core/iblt_of_iblts.h"
#include "core/multiround_protocol.h"
#include "core/naive_protocol.h"
#include "core/workload.h"

namespace setrec {
namespace {

void RunRegime(size_t s, size_t h, size_t d, uint64_t seed) {
  SsrWorkloadSpec spec;
  spec.num_children = s;
  spec.child_size = h;
  spec.changes = d;
  spec.universe = 1ull << 48;  // "sufficiently large u"
  spec.seed = seed;
  SsrWorkload w = MakeSsrWorkload(spec);

  SsrParams params;
  params.max_child_size = h + d + 2;
  params.max_children = s + d;
  params.seed = seed + 1;

  NaiveProtocol naive(params);
  IbltOfIbltsProtocol iblt2(params);
  CascadingProtocol cascade(params);
  MultiRoundProtocol multiround(params);
  const SetsOfSetsProtocol* protocols[] = {&naive, &iblt2, &cascade,
                                           &multiround};

  std::printf("\n-- s=%zu h=%zu n=%zu d=%zu --\n", s, h, s * h,
              w.applied_changes);
  std::printf("%-12s %12s %10s %8s %8s\n", "protocol", "bytes", "time_ms",
              "rounds", "ok");
  for (const SetsOfSetsProtocol* protocol : protocols) {
    Channel ch;
    Result<SsrOutcome> out(Status(StatusCode::kExhausted, "unset"));
    double secs = bench::TimeSeconds([&] {
      out = protocol->Reconcile(w.alice, w.bob, w.applied_changes, &ch);
    });
    bool ok = out.ok() && out.value().recovered == Canonicalize(w.alice);
    std::printf("%-12s %12zu %10.2f %8zu %8s\n", protocol->Name().c_str(),
                ch.total_bytes(), secs * 1e3, ch.rounds(),
                ok ? "yes" : "NO");
  }
}

}  // namespace
}  // namespace setrec

int main() {
  setrec::bench::Header("E1 / Table 1",
                        "SSRK protocol comparison, dense regime");
  // Dense binary-database regime at three scales; d small vs s, h.
  setrec::RunRegime(/*s=*/64, /*h=*/64, /*d=*/4, /*seed=*/1);
  setrec::RunRegime(/*s=*/128, /*h=*/128, /*d=*/8, /*seed=*/2);
  setrec::RunRegime(/*s=*/256, /*h=*/256, /*d=*/16, /*seed=*/3);
  setrec::RunRegime(/*s=*/256, /*h=*/256, /*d=*/64, /*seed=*/4);
  std::printf(
      "\nExpected shape (Table 1): naive > iblt2 > cascade in bytes for\n"
      "large h; multiround smallest in bytes but the most rounds; the\n"
      "one-way protocols pay 2 rounds per attempt (data message + the\n"
      "split-party verdict frame; the paper counts 1 since its model\n"
      "shares the success signal for free).\n");
  return 0;
}
