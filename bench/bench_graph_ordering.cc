// Experiment E7 (DESIGN.md): Theorem 5.2 + Theorem 5.3 — degree-ordering
// random graph reconciliation.
//  Part A: separation rates of raw G(n,p) per Definition 5.1, sweeping n
//          and h: at laptop scale the (h, d+1, 2d+1) property essentially
//          never holds for d >= 2 (Theorem 5.3's h formula is < 1 here —
//          printed for reference), which motivates Part B.
//  Part B: end-to-end reconciliation on planted separated instances
//          (the theorem's premise realized constructively): success rate,
//          bytes, and the O(d(log d log h + log n)) shape vs d and n.

#include <cstdio>

#include "bench/bench_util.h"
#include "graph/degree_ordering.h"
#include "graph/separated_instance.h"

namespace setrec {
namespace {

void PartA() {
  std::printf("\nPart A: raw G(n,p) separation rate (Definition 5.1)\n");
  std::printf("%6s %6s %4s %4s %14s %10s\n", "n", "p", "d", "h", "thm5.3_h",
              "separated");
  for (size_t n : {500u, 1000u, 2000u}) {
    const double p = 0.5;
    for (size_t d : {1u, 2u}) {
      for (size_t h : {4u, 8u, 16u}) {
        int separated = 0;
        const int trials = 10;
        for (int t = 0; t < trials; ++t) {
          Rng rng(n * 17 + d * 3 + h + static_cast<size_t>(t));
          Graph g = Graph::RandomGnp(n, p, &rng);
          separated += IsSeparated(g, h, d + 1, 2 * d + 1);
        }
        std::printf("%6zu %6.2f %4zu %4zu %14.3f %9d%%\n", n, p, d, h,
                    TheoremFiveThreeH(n, p, d, 0.5),
                    separated * 100 / trials);
      }
    }
  }
}

void PartB() {
  std::printf(
      "\nPart B: planted separated instances, end-to-end (Theorem 5.2)\n");
  std::printf("%6s %4s %4s %8s %10s %10s %8s\n", "n", "h", "d", "success",
              "bytes", "ms", "rounds");
  struct Case {
    size_t n, h, d;
  };
  const Case cases[] = {{1000, 28, 1}, {2000, 28, 1}, {4000, 28, 1},
                        {2000, 36, 2}, {4000, 36, 2}, {4000, 44, 3}};
  for (const Case& c : cases) {
    int success = 0;
    size_t bytes = 0, rounds = 0;
    double ms = 0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      SeparatedInstanceSpec spec;
      spec.n = c.n;
      spec.h = c.h;
      spec.d = c.d;
      spec.seed = static_cast<uint64_t>(900 + t);
      Result<Graph> base = MakeSeparatedGraph(spec);
      if (!base.ok()) continue;
      Rng rng(static_cast<uint64_t>(1000 + t));
      Graph alice = base.value(), bob = base.value();
      alice.Perturb(c.d - c.d / 2, &rng);
      bob.Perturb(c.d / 2, &rng);
      Channel ch;
      Result<GraphReconcileOutcome> rec(Status(StatusCode::kExhausted, "x"));
      ms += 1e3 * bench::TimeSeconds([&] {
        rec = DegreeOrderingReconcile(alice, bob, c.d, c.h,
                                      static_cast<uint64_t>(1100 + t), &ch);
      });
      if (rec.ok()) {
        ++success;
        bytes += ch.total_bytes();
        rounds += ch.rounds();
      }
    }
    std::printf("%6zu %4zu %4zu %7d%% %10zu %10.1f %8zu\n", c.n, c.h, c.d,
                success * 100 / trials,
                success ? bytes / static_cast<size_t>(success) : 0, ms / trials,
                success ? rounds / static_cast<size_t>(success) : 0);
  }
}

}  // namespace
}  // namespace setrec

int main() {
  setrec::bench::Header("E7 / Thm 5.2 + 5.3", "degree-ordering scheme");
  setrec::PartA();
  setrec::PartB();
  std::printf(
      "\nExpected shapes: raw G(n,p) separation is rare at laptop n (the\n"
      "Thm 5.3 h column is ~1: the theorem needs astronomically large n);\n"
      "on separated instances the protocol succeeds in 1 round with bytes\n"
      "growing in d but nearly flat in n (Theorem 5.2's O(d log n) term).\n");
  return 0;
}
