// Experiment E2 (DESIGN.md): Figure 1 of the paper — two-way merge
// ambiguity. The figure shows two graphs where adding one edge to each can
// yield isomorphic results in multiple, mutually non-isomorphic ways, so
// "union" reconciliation is ill-defined. This bench constructs the
// phenomenon exhaustively over random 5- and 6-vertex pairs and reports how
// often it appears, plus one concrete witness.

#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "graph/isomorphism.h"
#include "hashing/random.h"

namespace setrec {
namespace {

struct AmbiguityStats {
  int trials = 0;
  int ambiguous = 0;
};

AmbiguityStats Scan(size_t n, int trials, uint64_t seed, bool print_witness) {
  Rng rng(seed);
  AmbiguityStats stats;
  bool printed = false;
  for (int trial = 0; trial < trials; ++trial) {
    Graph a = Graph::RandomGnp(n, 0.5, &rng);
    Graph b = a;
    b.Perturb(2, &rng);
    // All one-edge additions to each side.
    std::vector<std::pair<uint64_t, Graph>> ca, cb;
    for (uint32_t u = 0; u < n; ++u) {
      for (uint32_t v = u + 1; v < n; ++v) {
        if (!a.HasEdge(u, v)) {
          Graph g2 = a;
          g2.AddEdge(u, v);
          ca.emplace_back(CanonicalForm(g2).value(), g2);
        }
        if (!b.HasEdge(u, v)) {
          Graph g2 = b;
          g2.AddEdge(u, v);
          cb.emplace_back(CanonicalForm(g2).value(), g2);
        }
      }
    }
    std::set<uint64_t> matches;
    for (const auto& [x, gx] : ca) {
      for (const auto& [y, gy] : cb) {
        if (x == y) matches.insert(x);
      }
    }
    ++stats.trials;
    if (matches.size() >= 2) {
      ++stats.ambiguous;
      if (print_witness && !printed) {
        printed = true;
        std::printf(
            "  witness at n=%zu trial %d: %zu distinct non-isomorphic\n"
            "  one-edge-each completions agree pairwise (canonical forms:",
            n, trial, matches.size());
        for (uint64_t m : matches)
          std::printf(" %llx", static_cast<unsigned long long>(m));
        std::printf(")\n");
      }
    }
  }
  return stats;
}

}  // namespace
}  // namespace setrec

int main() {
  setrec::bench::Header("E2 / Figure 1", "two-way merge ambiguity");
  std::printf("%4s %8s %10s %10s\n", "n", "trials", "ambiguous", "rate");
  for (size_t n : {5u, 6u}) {
    auto stats = setrec::Scan(n, 200, 42 + n, n == 5);
    std::printf("%4zu %8d %10d %9.1f%%\n", n, stats.trials, stats.ambiguous,
                100.0 * stats.ambiguous / stats.trials);
  }
  std::printf(
      "\nExpected shape (Figure 1): a non-trivial fraction of random pairs\n"
      "admit multiple non-isomorphic merges -> the paper's one-way notion\n"
      "of reconciliation is the right formalization.\n");
  return 0;
}
