// Experiment E5 (DESIGN.md): Theorem 3.1's l0 set-difference estimator vs
// the strata estimator of [14]. The theorem claims an O(log u) space factor
// and O(log n) query/merge factor improvement; we measure serialized size,
// update/merge/query wall time, and estimate accuracy across true
// differences.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "estimator/l0_estimator.h"
#include "estimator/strata_estimator.h"
#include "hashing/random.h"

namespace setrec {
namespace {

template <typename Estimator>
struct Measured {
  double med_ratio;
  double update_ns;
  double merge_us;
  double query_us;
};

template <typename Estimator>
Measured<Estimator> Measure(const typename Estimator::Params& params,
                            size_t n, size_t d) {
  std::vector<double> ratios;
  double update_s = 0, merge_s = 0, query_s = 0;
  size_t updates = 0;
  for (uint64_t trial = 0; trial < 7; ++trial) {
    Rng rng(trial * 101 + d);
    Estimator alice(params), bob(params);
    std::vector<uint64_t> shared(n), extra(d);
    for (auto& e : shared) e = rng.NextU64();
    for (auto& e : extra) e = rng.NextU64();
    update_s += bench::TimeSeconds([&] {
      alice.UpdateBatch(shared.data(), shared.size(), 1);
      bob.UpdateBatch(shared.data(), shared.size(), 2);
      for (size_t i = 0; i < extra.size(); ++i) {
        (i % 2 == 0 ? alice : bob).Update(extra[i], 1 + (i % 2));
      }
    });
    updates += 2 * n + d;
    merge_s += bench::TimeSeconds([&] { (void)alice.Merge(bob); });
    uint64_t est = 0;
    query_s += bench::TimeSeconds([&] { est = alice.Estimate(); });
    ratios.push_back(d == 0 ? (est == 0 ? 1.0 : 99.0)
                            : static_cast<double>(est) / static_cast<double>(d));
  }
  std::sort(ratios.begin(), ratios.end());
  return {ratios[ratios.size() / 2],
          update_s / static_cast<double>(updates) * 1e9,
          merge_s / 7 * 1e6, query_s / 7 * 1e6};
}

}  // namespace
}  // namespace setrec

int main() {
  using namespace setrec;
  bench::Header("E5 / Theorem 3.1 vs [14]", "l0 vs strata estimators");

  L0Estimator::Params l0_params;
  l0_params.seed = 1;
  StrataEstimator::Params strata_params;
  strata_params.seed = 1;
  std::printf("sketch sizes: l0 = %zu bytes, strata = %zu bytes (%.1fx)\n",
              L0Estimator(l0_params).SerializedSize(),
              StrataEstimator(strata_params).SerializedSize(),
              static_cast<double>(
                  StrataEstimator(strata_params).SerializedSize()) /
                  static_cast<double>(L0Estimator(l0_params).SerializedSize()));

  std::printf("\n%10s %6s | %10s %10s %10s | %10s %10s %10s\n", "est", "d",
              "med(est/d)", "update_ns", "merge_us", "query_us", "", "");
  const size_t n = 20000;
  for (size_t d : {4u, 16u, 64u, 256u, 1024u, 4096u}) {
    auto l0 = Measure<L0Estimator>(l0_params, n, d);
    std::printf("%10s %6zu | %10.2f %10.1f %10.2f | %10.2f\n", "l0", d,
                l0.med_ratio, l0.update_ns, l0.merge_us, l0.query_us);
    auto st = Measure<StrataEstimator>(strata_params, n, d);
    std::printf("%10s %6zu | %10.2f %10.1f %10.2f | %10.2f\n", "strata", d,
                st.med_ratio, st.update_ns, st.merge_us, st.query_us);
  }
  std::printf(
      "\nExpected shape (Thm 3.1): both estimators land within a constant\n"
      "factor of the true d; the l0 sketch is ~an order of magnitude\n"
      "smaller and merges in O(words) (word-add + mask) instead of\n"
      "cell-wise IBLT addition.\n");
  return 0;
}
