// Experiment E8 (DESIGN.md): Theorem 5.5 + Theorem 5.6 — degree-
// neighborhood random graph reconciliation.
//  Part A: (pn, 4d+1)-disjointness rate of raw G(n,p) (Definition 5.4):
//          unlike Definition 5.1, this DOES hold at laptop scale for dense
//          enough p — the "works for much larger ranges of p and d" claim.
//  Part B: end-to-end reconciliation on raw G(n,p): success, bytes, time.
//          The ~O(pn) communication premium over the degree-ordering
//          scheme (Section 5.2's closing comparison) is visible directly.

#include <cstdio>

#include "bench/bench_util.h"
#include "graph/degree_neighborhood.h"

namespace setrec {
namespace {

void PartA() {
  std::printf(
      "\nPart A: raw G(n,p) disjointness rate (Definition 5.4) at the\n"
      "paper's 4d+1 and at the 8d+1 the implementation's greedy matching\n"
      "needs (dense graphs move a signature by up to 4 per edge change)\n");
  std::printf("%6s %6s %4s %10s %10s\n", "n", "p", "d", "k=4d+1", "k=8d+1");
  struct Case {
    size_t n;
    double p;
    size_t d;
  };
  const Case cases[] = {{400, 0.25, 1}, {600, 0.25, 1}, {800, 0.25, 1},
                        {800, 0.25, 2}, {800, 0.15, 1}, {1200, 0.25, 2}};
  for (const Case& c : cases) {
    int disjoint4 = 0, disjoint8 = 0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      Rng rng(c.n * 3 + c.d + static_cast<size_t>(t));
      Graph g = Graph::RandomGnp(c.n, c.p, &rng);
      const uint64_t m = static_cast<uint64_t>(c.p * static_cast<double>(c.n));
      disjoint4 += AreNeighborhoodsDisjoint(g, m, 4 * c.d + 1);
      disjoint8 += AreNeighborhoodsDisjoint(g, m, 8 * c.d + 1);
    }
    std::printf("%6zu %6.2f %4zu %9d%% %9d%%\n", c.n, c.p, c.d,
                disjoint4 * 100 / trials, disjoint8 * 100 / trials);
  }
}

void PartB() {
  std::printf("\nPart B: end-to-end on raw G(n,p) (Theorem 5.6)\n");
  std::printf("%6s %6s %4s %8s %12s %10s\n", "n", "p", "d", "success",
              "bytes", "ms");
  struct Case {
    size_t n;
    double p;
    size_t d;
  };
  const Case cases[] = {{400, 0.25, 1}, {800, 0.25, 1}, {800, 0.25, 2}};
  for (const Case& c : cases) {
    int success = 0;
    size_t bytes = 0;
    double ms = 0;
    const int trials = 3;
    for (int t = 0; t < trials; ++t) {
      Rng rng(7000 + c.n + static_cast<size_t>(t));
      Graph base = Graph::RandomGnp(c.n, c.p, &rng);
      Graph alice = base, bob = base;
      alice.Perturb(c.d - c.d / 2, &rng);
      bob.Perturb(c.d / 2, &rng);
      Channel ch;
      Result<GraphReconcileOutcome> rec(Status(StatusCode::kExhausted, "x"));
      ms += 1e3 * bench::TimeSeconds([&] {
        rec = DegreeNeighborhoodReconcile(
            alice, bob, c.d,
            static_cast<uint64_t>(c.p * static_cast<double>(c.n)),
            static_cast<uint64_t>(7100 + t), &ch);
      });
      if (rec.ok()) {
        ++success;
        bytes += ch.total_bytes();
      }
    }
    std::printf("%6zu %6.2f %4zu %7d%% %12zu %10.1f\n", c.n, c.p, c.d,
                success * 100 / trials,
                success ? bytes / static_cast<size_t>(success) : 0,
                ms / trials);
  }
}

}  // namespace
}  // namespace setrec

int main() {
  setrec::bench::Header("E8 / Thm 5.5 + 5.6", "degree-neighborhood scheme");
  setrec::PartA();
  setrec::PartB();
  std::printf(
      "\nExpected shapes: disjointness holds on raw G(n,p) at moderate n\n"
      "(vs Definition 5.1, which does not) — the scheme's robustness; but\n"
      "communication is ~O(pn) times the degree-ordering scheme's (compare\n"
      "bench_graph_ordering Part B at matched n), Section 5.2's trade-off.\n");
  return 0;
}
