#!/usr/bin/env bash
# One-shot gate driver: runs the four verification lanes (default, asan,
# tsan, lint — see docs/ANALYSIS.md) plus the obs smoke lanes
# (bench gate + live distributed-obs probe, docs/OBSERVABILITY.md) and
# exits non-zero if any fails.
# Usage: scripts/check.sh [-j N]
set -u

jobs=$(nproc)
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."
failed=()

run() {
  local name="$1"
  shift
  echo "==> [$name] $*"
  if ! "$@"; then
    echo "==> [$name] FAILED"
    failed+=("$name")
    return 1
  fi
}

lane() {
  # lane <name> <preset> <test-args...>: configure + build + test; a
  # failing step skips the rest of the lane but later lanes still run.
  local name="$1" preset="$2"
  shift 2
  run "$name-configure" cmake --preset "$preset" &&
    run "$name-build" cmake --build --preset "$preset" -j "$jobs" &&
    run "$name-test" ctest --test-dir "build-$preset" --output-on-failure "$@"
}

# Lane 1: default build, full test suite.
run default-configure cmake -B build -S . &&
  run default-build cmake --build build -j "$jobs" &&
  run default-test ctest --test-dir build --output-on-failure

# Lane 1b: obs smoke — bench_service's built-in gate fails on modeled
# metrics overhead > 2% or any empty hot-path histogram.
run obs-smoke ./build/bench_service --quick

# Lane 1c: distributed-obs smoke — a live server, a plain client session,
# a traced probe session, and the operator console. Asserts the probe's
# merged client+server timeline (>= 90% coverage gate inside setrec_stat)
# and non-empty windowed-rate lines in the v2 exposition.
distributed_obs() {
  local log port addr server probe stat rc
  log=$(mktemp)
  # --serve higher than the sessions we run: the server must stay up to
  # answer the probe's TRACE? and the console's STAT?; we kill it after.
  ./build/example_sync_server --listen=tcp:0 --serve=8 --stats-every=1 \
    >"$log" 2>&1 &
  server=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on tcp port \([0-9]*\).*/\1/p' "$log")
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "distributed-obs: server never reported a port:"
    cat "$log"
    kill "$server" 2>/dev/null
    wait "$server" 2>/dev/null
    rm -f "$log"
    return 1
  fi
  addr="tcp:127.0.0.1:$port"
  rc=0
  if ! ./build/example_sync_client --connect="$addr"; then
    echo "distributed-obs: client session failed"
    rc=1
  fi
  probe=$(./build/setrec_stat --connect="$addr" --probe 2>&1)
  if [ $? -ne 0 ] || ! echo "$probe" | grep -q "^merged trace id="; then
    echo "distributed-obs: traced probe failed:"
    echo "$probe"
    rc=1
  fi
  stat=$(./build/setrec_stat --connect="$addr" --once 2>&1)
  if [ $? -ne 0 ] \
      || ! echo "$stat" | grep -q "^# setrec-metrics v2" \
      || ! echo "$stat" | grep -Eq "^rate setrec_sessions_per_sec\{\} [0-9]"; then
    echo "distributed-obs: STAT? exposition missing v2 header or rates:"
    echo "$stat"
    rc=1
  fi
  kill "$server" 2>/dev/null
  wait "$server" 2>/dev/null
  rm -f "$log"
  [ "$rc" -eq 0 ] && echo "distributed-obs: probe merged, rates live"
  return "$rc"
}
run distributed-obs distributed_obs

# Lane 1d: net-scale smoke — the server end of 2k concurrent connections
# (client swarm in a forked child; see bench_service.cc) must finish its
# measured sessions with zero failures/protocol errors and a bounded p99.
run net-scale ./build/bench_service --net-scale=2000

# Lane 2: ASan+UBSan over the lifetime-sensitive suites.
lane asan asan -L 'fast|service'

# Lane 3: TSan over the threaded suites.
lane tsan tsan -L 'mt|service|net'

# Lane 4: hardened warnings as errors (whole tree) + setrec_lint.
lane lint lint -L lint

echo
if [ "${#failed[@]}" -ne 0 ]; then
  echo "CHECK FAILED: ${failed[*]}"
  exit 1
fi
echo "CHECK OK: default, obs-smoke, distributed-obs, net-scale, asan, tsan, lint all green"
