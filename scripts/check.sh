#!/usr/bin/env bash
# One-shot gate driver: runs the four verification lanes (default, asan,
# tsan, lint — see docs/ANALYSIS.md) plus the obs smoke lane
# (docs/OBSERVABILITY.md) and exits non-zero if any fails.
# Usage: scripts/check.sh [-j N]
set -u

jobs=$(nproc)
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."
failed=()

run() {
  local name="$1"
  shift
  echo "==> [$name] $*"
  if ! "$@"; then
    echo "==> [$name] FAILED"
    failed+=("$name")
    return 1
  fi
}

lane() {
  # lane <name> <preset> <test-args...>: configure + build + test; a
  # failing step skips the rest of the lane but later lanes still run.
  local name="$1" preset="$2"
  shift 2
  run "$name-configure" cmake --preset "$preset" &&
    run "$name-build" cmake --build --preset "$preset" -j "$jobs" &&
    run "$name-test" ctest --test-dir "build-$preset" --output-on-failure "$@"
}

# Lane 1: default build, full test suite.
run default-configure cmake -B build -S . &&
  run default-build cmake --build build -j "$jobs" &&
  run default-test ctest --test-dir build --output-on-failure

# Lane 1b: obs smoke — bench_service's built-in gate fails on modeled
# metrics overhead > 2% or any empty hot-path histogram.
run obs-smoke ./build/bench_service --quick

# Lane 2: ASan+UBSan over the lifetime-sensitive suites.
lane asan asan -L 'fast|service'

# Lane 3: TSan over the threaded suites.
lane tsan tsan -L 'mt|service|net'

# Lane 4: hardened warnings as errors (whole tree) + setrec_lint.
lane lint lint -L lint

echo
if [ "${#failed[@]}" -ne 0 ]; then
  echo "CHECK FAILED: ${failed[*]}"
  exit 1
fi
echo "CHECK OK: default, obs-smoke, asan, tsan, lint all green"
