// End-to-end split-party sessions over real sockets: a NetPump-fronted
// SyncService hosts Alice halves; remote clients drive Bob halves over
// socketpairs, TCP loopback and Unix-domain sockets. Transcripts must be
// byte-identical to the direct Reconcile call for the same seeds, and
// disconnects/garbage must cancel cleanly instead of wedging the pump.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "net/net_pump.h"
#include "net/stream_party.h"
#include "net/wire.h"
#include "service/sync_service.h"

namespace setrec {
namespace {

struct Fixture {
  SsrParams params;
  SetOfSets alice;
  SetOfSets bob;
  std::optional<size_t> known_d;
};

Fixture MakeFixture(SsrProtocolKind kind, bool known_d, uint64_t salt) {
  SsrWorkloadSpec spec;
  spec.num_children = 16;
  spec.child_size = 8;
  spec.changes = 3;
  spec.seed = 4400 + static_cast<uint64_t>(kind) * 13 + salt;
  SsrWorkload w = MakeSsrWorkload(spec);
  Fixture f;
  f.params.max_child_size = spec.child_size + spec.changes + 2;
  f.params.max_children = spec.num_children + spec.changes;
  f.params.seed = spec.seed + 9;
  f.alice = std::move(w.alice);
  f.bob = std::move(w.bob);
  if (known_d) f.known_d = w.applied_changes;
  return f;
}

struct ClientResult {
  Result<SsrOutcome> outcome = Status::Ok();
  std::vector<Channel::Message> transcript;
};

/// What examples/sync_client.cpp does, inlined: hello, then Bob's half.
ClientResult RunClient(int fd, SsrProtocolKind kind, uint64_t set_id,
                       const Fixture& f) {
  ClientResult result;
  HelloSpec hello;
  hello.protocol = kind;
  hello.set_id = set_id;
  hello.params = f.params;
  hello.known_d = f.known_d;
  if (Status s = SendHello(fd, hello); !s.ok()) {
    result.outcome = s;
    return result;
  }
  std::unique_ptr<SetsOfSetsProtocol> protocol =
      MakeSsrProtocol(kind, f.params);
  Channel channel;
  result.outcome =
      RunBobHalfOverFd(*protocol, f.bob, f.known_d, fd, &channel);
  result.transcript = channel.transcript();
  return result;
}

void ExpectSameTranscript(const std::vector<Channel::Message>& want,
                          const std::vector<Channel::Message>& got,
                          const char* what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(static_cast<int>(want[i].from), static_cast<int>(got[i].from))
        << what << " message " << i;
    EXPECT_EQ(want[i].label, got[i].label) << what << " message " << i;
    EXPECT_EQ(want[i].payload, got[i].payload) << what << " message " << i;
  }
}

struct Case {
  SsrProtocolKind kind;
  bool known_d;

  std::string Name() const {
    return std::string(SsrProtocolKindName(kind)) +
           (known_d ? "_SSRK" : "_SSRU");
  }
};

class NetPumpSocketpair : public ::testing::TestWithParam<Case> {};

TEST_P(NetPumpSocketpair, SessionTranscriptMatchesDirect) {
  const Case& c = GetParam();
  const Fixture f = MakeFixture(c.kind, c.known_d, 1);

  std::unique_ptr<SetsOfSetsProtocol> protocol =
      MakeSsrProtocol(c.kind, f.params);
  Channel direct_channel;
  Result<SsrOutcome> direct =
      protocol->Reconcile(f.alice, f.bob, f.known_d, &direct_channel);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  SyncService service;
  uint64_t set_id =
      service.RegisterSharedSet(std::make_shared<SetOfSets>(f.alice));
  NetPump pump(&service);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(pump.AdoptConnection(sv[0]).ok());

  ClientResult client;
  std::thread client_thread([&] {
    client = RunClient(sv[1], c.kind, set_id, f);
    ::close(sv[1]);
  });
  pump.DrainConnections();
  client_thread.join();

  ASSERT_TRUE(client.outcome.ok()) << client.outcome.status().ToString();
  EXPECT_EQ(client.outcome.value().recovered, Canonicalize(f.alice));
  ExpectSameTranscript(direct_channel.transcript(), client.transcript,
                       c.Name().c_str());

  std::vector<SessionResult> results = pump.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_EQ(results[0].stats.rounds, direct.value().stats.rounds);
  EXPECT_EQ(results[0].stats.bytes, direct.value().stats.bytes);
  EXPECT_EQ(pump.stats().protocol_errors, 0u);
  EXPECT_EQ(pump.stats().disconnects, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, NetPumpSocketpair,
    ::testing::Values(Case{SsrProtocolKind::kNaive, true},
                      Case{SsrProtocolKind::kNaive, false},
                      Case{SsrProtocolKind::kIblt2, true},
                      Case{SsrProtocolKind::kIblt2, false},
                      Case{SsrProtocolKind::kCascade, true},
                      Case{SsrProtocolKind::kCascade, false},
                      Case{SsrProtocolKind::kMultiRound, true},
                      Case{SsrProtocolKind::kMultiRound, false}),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return param_info.param.Name();
    });

// STAT? is an admin frame: it must answer on a bare connection (no hello,
// no session), never count against pre-session budgets, and leave the
// connection usable. Empty session-latency histograms are omitted from the
// exposition, so the bare query must NOT mention them; after one real
// session the same (still-open) admin connection must see them populated.
TEST(NetPumpStats, StatQueryAnswersBareAndReflectsTraffic) {
  const Fixture f = MakeFixture(SsrProtocolKind::kIblt2, true, 5);
  SyncService service;
  uint64_t set_id =
      service.RegisterSharedSet(std::make_shared<SetOfSets>(f.alice));
  NetPump pump(&service);
  int admin[2];
  int session[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, admin), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, session), 0);
  ASSERT_TRUE(pump.AdoptConnection(admin[0]).ok());
  ASSERT_TRUE(pump.AdoptConnection(session[0]).ok());

  Result<std::string> before = Status::Ok();
  Result<std::string> after = Status::Ok();
  size_t after_queries = 0;
  ClientResult client;
  std::thread client_thread([&] {
    before = QueryStatsOverFd(admin[1]);
    client = RunClient(session[1], SsrProtocolKind::kIblt2, set_id, f);
    ::close(session[1]);
    // The client returns once ITS half finishes — the pump may not have
    // digested the final frame yet, and the exposition is live, not
    // barriered. Each query forces a full pump round-trip, so poll until
    // the session shows up finalized.
    for (after_queries = 0; after_queries < 100; ++after_queries) {
      after = QueryStatsOverFd(admin[1]);
      if (!after.ok() || after.value().find("setrec_sessions_completed{} 1") !=
                             std::string::npos) {
        break;
      }
    }
    ::close(admin[1]);
  });
  pump.DrainConnections();
  client_thread.join();

  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before.value().rfind("# setrec-metrics v2\n", 0), 0u);
  EXPECT_NE(before.value().find("setrec_pump_stat_requests"),
            std::string::npos);
  // The v2 suffix rule: windowed rate lines are appended after every v1
  // line type, so a v1 consumer still parses the prefix.
  const size_t rate_at = before.value().find("rate setrec_sessions_per_sec");
  ASSERT_NE(rate_at, std::string::npos);
  EXPECT_GT(rate_at, before.value().find("setrec_pump_stat_requests"));
  EXPECT_NE(before.value().find("setrec_sessions_completed{} 0"),
            std::string::npos);
  EXPECT_EQ(before.value().find("setrec_session_latency_ns"),
            std::string::npos);

  ASSERT_TRUE(client.outcome.ok()) << client.outcome.status().ToString();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(after.value().find("setrec_sessions_completed{} 1"),
            std::string::npos);
  EXPECT_NE(after.value().find(
                "setrec_session_latency_ns{proto=\"iblt2\",codec=\"dense\"}"),
            std::string::npos);

  // Admin traffic is invisible to the session layer: one session, no
  // protocol errors, and every STAT? hit counted.
  std::vector<SessionResult> results = pump.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_EQ(pump.stats().protocol_errors, 0u);
  EXPECT_EQ(pump.SnapshotPumpMetrics().stat_requests, 2u + after_queries);
}

TEST(NetPumpTcp, ConcurrentClientsOverLoopDevice) {
  SyncService service;
  // One registered server set shared by all clients (the memoization path).
  const Fixture base = MakeFixture(SsrProtocolKind::kIblt2, true, 2);
  uint64_t set_id =
      service.RegisterSharedSet(std::make_shared<SetOfSets>(base.alice));
  NetPump pump(&service);
  Result<uint16_t> port = pump.ListenTcp(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  constexpr int kClients = 6;
  const SsrProtocolKind kinds[] = {
      SsrProtocolKind::kNaive, SsrProtocolKind::kIblt2,
      SsrProtocolKind::kCascade, SsrProtocolKind::kMultiRound,
      SsrProtocolKind::kIblt2, SsrProtocolKind::kCascade};
  std::vector<ClientResult> client_results(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const size_t idx = static_cast<size_t>(i);
      Fixture f = base;
      // Each client drifts independently from the shared server set.
      f.bob[static_cast<size_t>(i) % f.bob.size()].push_back(
          (uint64_t{1} << 40) + static_cast<uint64_t>(i));
      f.bob = Canonicalize(std::move(f.bob));
      f.known_d = 6;
      Result<int> fd = ConnectTcp("127.0.0.1", port.value());
      if (!fd.ok()) {
        client_results[idx].outcome = fd.status();
        return;
      }
      client_results[idx] = RunClient(fd.value(), kinds[idx], set_id, f);
      ::close(fd.value());
    });
  }
  // Serve until every client session finished (clients connect at their
  // own pace, so the connection set can transiently be empty).
  size_t done = 0;
  for (int spins = 0; spins < 20000 && done < kClients; ++spins) {
    pump.PumpOnce(10);
    for (SessionResult& r : pump.TakeResults()) {
      EXPECT_TRUE(r.status.ok()) << r.label << ": " << r.status.ToString();
      ++done;
    }
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(done, static_cast<size_t>(kClients));
  for (int i = 0; i < kClients; ++i) {
    const size_t slot = static_cast<size_t>(i);
    ASSERT_TRUE(client_results[slot].outcome.ok())
        << "client " << i << ": "
        << client_results[slot].outcome.status().ToString();
    EXPECT_EQ(client_results[slot].outcome.value().recovered,
              Canonicalize(base.alice))
        << "client " << i;
  }
  EXPECT_EQ(pump.stats().protocol_errors, 0u);
  EXPECT_GE(pump.stats().accepted, static_cast<size_t>(kClients));
}

TEST(NetPumpUnix, SessionOverUnixSocket) {
  const Fixture f = MakeFixture(SsrProtocolKind::kCascade, true, 3);
  SyncService service;
  uint64_t set_id =
      service.RegisterSharedSet(std::make_shared<SetOfSets>(f.alice));
  NetPump pump(&service);
  const std::string path =
      "/tmp/setrec_net_test_" + std::to_string(::getpid()) + ".sock";
  ASSERT_TRUE(pump.ListenUnix(path).ok());

  ClientResult client;
  std::thread client_thread([&] {
    Result<int> fd = ConnectUnix(path);
    if (!fd.ok()) {
      client.outcome = fd.status();
      return;
    }
    client = RunClient(fd.value(), SsrProtocolKind::kCascade, set_id, f);
    ::close(fd.value());
  });
  size_t done = 0;
  for (int spins = 0; spins < 20000 && done == 0; ++spins) {
    pump.PumpOnce(10);
    done += pump.TakeResults().size();
  }
  client_thread.join();
  ASSERT_EQ(done, 1u);
  ASSERT_TRUE(client.outcome.ok()) << client.outcome.status().ToString();
  EXPECT_EQ(client.outcome.value().recovered, Canonicalize(f.alice));
}

TEST(NetPumpFailures, MidSessionDisconnectCancelsTheSession) {
  const Fixture f = MakeFixture(SsrProtocolKind::kNaive, true, 4);
  SyncService service;
  uint64_t set_id =
      service.RegisterSharedSet(std::make_shared<SetOfSets>(f.alice));
  NetPump pump(&service);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(pump.AdoptConnection(sv[0]).ok());

  // Hello only, then hang up: the server's Alice half sends her opener and
  // parks on the verdict that never comes.
  HelloSpec hello;
  hello.protocol = SsrProtocolKind::kNaive;
  hello.set_id = set_id;
  hello.params = f.params;
  hello.known_d = f.known_d;
  ASSERT_TRUE(SendHello(sv[1], hello).ok());
  // Give the pump a chance to admit the session and write the opener.
  for (int i = 0; i < 10; ++i) pump.PumpOnce(10);
  ::close(sv[1]);
  pump.DrainConnections();

  std::vector<SessionResult> results = pump.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].status.ok());
  EXPECT_EQ(results[0].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(pump.stats().disconnects, 1u);
  EXPECT_EQ(service.stats().sessions_cancelled, 1u);
  EXPECT_EQ(pump.connection_count(), 0u);
}

TEST(NetPumpFailures, GarbageHelloDropsConnectionWithoutSession) {
  SyncService service;
  NetPump pump(&service);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(pump.AdoptConnection(sv[0]).ok());

  // A syntactically valid frame that is not a hello.
  Channel::Message bogus{Party::kBob, {1, 2, 3}, "not-hello"};
  ASSERT_TRUE(WriteFrameToFd(sv[1], bogus).ok());
  for (int i = 0; i < 10 && pump.connection_count() > 0; ++i) {
    pump.PumpOnce(10);
  }
  ::close(sv[1]);
  EXPECT_EQ(pump.connection_count(), 0u);
  EXPECT_EQ(pump.stats().protocol_errors, 1u);
  EXPECT_TRUE(pump.TakeResults().empty());
  EXPECT_EQ(service.stats().sessions_submitted, 0u);
}

}  // namespace
}  // namespace setrec
