#include "graph/poly_signature.h"

#include <gtest/gtest.h>

#include "graph/isomorphism.h"
#include "hashing/random.h"

namespace setrec {
namespace {

TEST(IsomorphismProtocolTest, AcceptsIsomorphicPairs) {
  Rng rng(1);
  for (uint64_t trial = 0; trial < 10; ++trial) {
    Graph g = Graph::RandomGnp(7, 0.4, &rng);
    Graph relabeled(7);
    for (const auto& [u, v] : g.Edges()) {
      relabeled.AddEdge((u + 2) % 7, (v + 2) % 7);
    }
    Channel ch;
    Result<bool> iso = IsomorphismProtocol(g, relabeled, trial, &ch);
    ASSERT_TRUE(iso.ok());
    EXPECT_TRUE(iso.value());
    EXPECT_EQ(ch.total_bytes(), 16u);  // O(log n) bits: r and p_A(r).
    EXPECT_EQ(ch.rounds(), 1u);
  }
}

TEST(IsomorphismProtocolTest, RejectsNonIsomorphic) {
  Rng rng(2);
  int wrong = 0;
  for (uint64_t trial = 0; trial < 10; ++trial) {
    Graph g = Graph::RandomGnp(6, 0.5, &rng);
    Graph h = g;
    h.Perturb(1, &rng);  // Different edge count => never isomorphic.
    Channel ch;
    Result<bool> iso = IsomorphismProtocol(g, h, trial + 100, &ch);
    ASSERT_TRUE(iso.ok());
    if (iso.value()) ++wrong;  // Schwartz-Zippel false positive.
  }
  EXPECT_EQ(wrong, 0);
}

TEST(IsomorphismProtocolTest, SizeMismatchRejected) {
  Channel ch;
  EXPECT_FALSE(IsomorphismProtocol(Graph(3), Graph(4), 1, &ch).ok());
}

TEST(PolyGraphReconcileTest, RecoverIsomorphicGraph) {
  Rng rng(3);
  for (uint64_t trial = 0; trial < 5; ++trial) {
    Graph base = Graph::RandomGnp(7, 0.4, &rng);
    Graph alice = base, bob = base;
    alice.Perturb(1, &rng);
    bob.Perturb(1, &rng);
    Channel ch;
    Result<Graph> rec = PolyGraphReconcile(alice, bob, 2, trial + 50, &ch);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    Result<bool> iso = IsIsomorphic(rec.value(), alice);
    ASSERT_TRUE(iso.ok());
    EXPECT_TRUE(iso.value());
    EXPECT_EQ(ch.total_bytes(), 16u);  // Theorem 4.3: O(d log n) bits.
  }
}

TEST(PolyGraphReconcileTest, IdenticalGraphsZeroToggles) {
  Rng rng(4);
  Graph g = Graph::RandomGnp(6, 0.5, &rng);
  Channel ch;
  Result<Graph> rec = PolyGraphReconcile(g, g, 1, 9, &ch);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value(), g);
}

TEST(PolyGraphReconcileTest, BoundTooSmallFailsDetectably) {
  Rng rng(5);
  Graph base = Graph::RandomGnp(6, 0.5, &rng);
  Graph alice = base;
  alice.Perturb(3, &rng);  // 3 toggles; bound 1 cannot reach it (usually).
  Channel ch;
  Result<Graph> rec = PolyGraphReconcile(alice, base, 1, 10, &ch);
  if (!rec.ok()) {
    EXPECT_EQ(rec.status().code(), StatusCode::kDecodeFailure);
  } else {
    // A 1-toggle graph can occasionally be isomorphic to a 3-toggle one.
    EXPECT_TRUE(IsIsomorphic(rec.value(), alice).value());
  }
}

TEST(PolyGraphReconcileTest, LimitsEnforced) {
  Channel ch;
  EXPECT_FALSE(PolyGraphReconcile(Graph(9), Graph(9), 1, 1, &ch).ok());
  EXPECT_FALSE(PolyGraphReconcile(Graph(5), Graph(5), 4, 1, &ch).ok());
}

}  // namespace
}  // namespace setrec
