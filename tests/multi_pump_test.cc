// Multi-pump end-to-end: a ShardedSyncService fronted by one NetPump per
// shard (MultiNetPump), serving real remote Bob halves concurrently over
// adopted socketpairs and over TCP with SO_REUSEPORT listener
// distribution. Transcripts must stay byte-identical to the direct
// Reconcile call — shard placement is invisible to the protocol bytes.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "net/multi_pump.h"
#include "net/stream_party.h"
#include "net/wire.h"
#include "service/sharded_service.h"

namespace setrec {
namespace {

struct Fixture {
  SsrParams params;
  SetOfSets alice;
  SetOfSets bob;
  std::optional<size_t> known_d;
};

Fixture MakeFixture(SsrProtocolKind kind, bool known_d, uint64_t salt) {
  SsrWorkloadSpec spec;
  spec.num_children = 12;
  spec.child_size = 7;
  spec.changes = 3;
  spec.seed = 6200 + static_cast<uint64_t>(kind) * 17 + salt;
  SsrWorkload w = MakeSsrWorkload(spec);
  Fixture f;
  f.params.max_child_size = spec.child_size + spec.changes + 2;
  f.params.max_children = spec.num_children + spec.changes;
  f.params.seed = spec.seed + 3;
  f.alice = std::move(w.alice);
  f.bob = std::move(w.bob);
  if (known_d) f.known_d = w.applied_changes;
  return f;
}

Result<SsrOutcome> RunClient(int fd, SsrProtocolKind kind, uint64_t set_id,
                             const Fixture& f, Channel* channel) {
  HelloSpec hello;
  hello.protocol = kind;
  hello.set_id = set_id;
  hello.params = f.params;
  hello.known_d = f.known_d;
  if (Status s = SendHello(fd, hello); !s.ok()) return s;
  std::unique_ptr<SetsOfSetsProtocol> protocol =
      MakeSsrProtocol(kind, f.params);
  return RunBobHalfOverFd(*protocol, f.bob, f.known_d, fd, channel);
}

TEST(MultiPumpTest, AdoptedSocketpairsAcrossShards) {
  constexpr size_t kShards = 3;
  constexpr int kClientsPerKind = 4;  // 4 kinds x 4 = 16 concurrent clients.

  ShardedSyncServiceOptions service_options;
  service_options.shards = kShards;
  service_options.spawn_threads = false;  // Pump threads drive the shards.
  ShardedSyncService service(service_options);

  // One fixture per protocol kind; every client of a kind reuses it, so
  // the direct transcript is the shared ground truth.
  std::vector<Fixture> fixtures;
  std::vector<uint64_t> set_ids;
  std::vector<std::vector<Channel::Message>> direct_transcripts;
  for (int kind = 0; kind < kSsrProtocolKindCount; ++kind) {
    Fixture f =
        MakeFixture(static_cast<SsrProtocolKind>(kind), kind % 2 == 0, 5);
    set_ids.push_back(
        service.RegisterSharedSet(std::make_shared<SetOfSets>(f.alice)));
    std::unique_ptr<SetsOfSetsProtocol> protocol =
        MakeSsrProtocol(static_cast<SsrProtocolKind>(kind), f.params);
    Channel direct_channel;
    Result<SsrOutcome> direct =
        protocol->Reconcile(f.alice, f.bob, f.known_d, &direct_channel);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    direct_transcripts.push_back(direct_channel.transcript());
    fixtures.push_back(std::move(f));
  }

  MultiNetPumpOptions pump_options;
  pump_options.poll_timeout_ms = 20;
  MultiNetPump pump(&service, pump_options);
  ASSERT_EQ(pump.pump_count(), kShards);
  pump.Start();

  struct ClientSlot {
    int kind;
    int fd;
    Result<SsrOutcome> outcome = Status::Ok();
    Channel channel;
  };
  std::vector<ClientSlot> slots;
  for (int kind = 0; kind < kSsrProtocolKindCount; ++kind) {
    for (int c = 0; c < kClientsPerKind; ++c) {
      int sv[2];
      ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
      pump.AdoptConnection(sv[0]);  // Hashed to a pump by connection id.
      slots.push_back(ClientSlot{kind, sv[1], Status::Ok(), Channel{}});
    }
  }
  std::vector<std::thread> clients;
  clients.reserve(slots.size());
  for (ClientSlot& slot : slots) {
    clients.emplace_back([&slot, &fixtures, &set_ids] {
      slot.outcome = RunClient(
          slot.fd, static_cast<SsrProtocolKind>(slot.kind),
          set_ids[static_cast<size_t>(slot.kind)],
          fixtures[static_cast<size_t>(slot.kind)], &slot.channel);
      ::close(slot.fd);
    });
  }
  for (std::thread& t : clients) t.join();
  // The clients saw their outcomes, but the pumps may not have digested
  // the final verdict frames (and harvested the results) yet.
  for (int spin = 0; spin < 500 && pump.results_seen() < slots.size();
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pump.Stop();

  for (const ClientSlot& slot : slots) {
    ASSERT_TRUE(slot.outcome.ok())
        << SsrProtocolKindName(static_cast<SsrProtocolKind>(slot.kind))
        << ": " << slot.outcome.status().ToString();
    EXPECT_EQ(slot.outcome.value().recovered,
              Canonicalize(fixtures[static_cast<size_t>(slot.kind)].alice));
    const std::vector<Channel::Message>& want =
        direct_transcripts[static_cast<size_t>(slot.kind)];
    ASSERT_EQ(slot.channel.transcript().size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(slot.channel.transcript()[i].payload, want[i].payload)
          << "message " << i;
    }
  }
  EXPECT_EQ(pump.results_seen(), slots.size());
  const NetPumpStats stats = pump.AggregateStats();
  EXPECT_EQ(stats.accepted, slots.size());
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.disconnects, 0u);
}

TEST(MultiPumpTest, TcpReusePortServesClients) {
  ShardedSyncServiceOptions service_options;
  service_options.shards = 2;
  service_options.spawn_threads = false;
  ShardedSyncService service(service_options);
  Fixture f = MakeFixture(SsrProtocolKind::kCascade, /*known_d=*/true, 9);
  uint64_t set_id =
      service.RegisterSharedSet(std::make_shared<SetOfSets>(f.alice));

  MultiNetPump pump(&service);
  Result<uint16_t> port = pump.ListenTcp(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  pump.Start();

  constexpr int kClients = 6;
  std::vector<Result<SsrOutcome>> outcomes(
      kClients, Result<SsrOutcome>(Status::Ok()));
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      Result<int> fd = ConnectTcp("127.0.0.1", port.value());
      if (!fd.ok()) {
        outcomes[static_cast<size_t>(i)] = fd.status();
        return;
      }
      Channel channel;
      outcomes[static_cast<size_t>(i)] = RunClient(
          fd.value(), SsrProtocolKind::kCascade, set_id, f, &channel);
      ::close(fd.value());
    });
  }
  for (std::thread& t : clients) t.join();
  pump.Stop();

  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(outcomes[static_cast<size_t>(i)].ok())
        << "client " << i << ": "
        << outcomes[static_cast<size_t>(i)].status().ToString();
    EXPECT_EQ(outcomes[static_cast<size_t>(i)].value().recovered,
              Canonicalize(f.alice));
  }
}

}  // namespace
}  // namespace setrec
