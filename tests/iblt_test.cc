#include "iblt/iblt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "hashing/random.h"

namespace setrec {
namespace {

std::vector<uint64_t> SortedU64(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(IbltConfigTest, PaddedCellsMultipleOfHashes) {
  IbltConfig config;
  config.cells = 13;
  config.num_hashes = 4;
  EXPECT_EQ(config.PaddedCells(), 16u);
  config.cells = 16;
  EXPECT_EQ(config.PaddedCells(), 16u);
}

TEST(IbltConfigTest, ForDifferenceScalesLinearly) {
  IbltConfig small = IbltConfig::ForDifference(10, 1);
  IbltConfig large = IbltConfig::ForDifference(1000, 1);
  EXPECT_GT(large.cells, 50 * small.cells / 10);
  EXPECT_GE(small.cells, 12u);
}

TEST(IbltConfigTest, FixedSerializedSize) {
  IbltConfig config;
  config.cells = 16;
  config.num_hashes = 4;
  config.key_width = 8;
  EXPECT_EQ(config.FixedSerializedSize(), 16u * (4 + 8 + 8));
}

TEST(IbltTest, InsertThenDecodePositive) {
  Iblt table(IbltConfig::ForDifference(8, 42));
  table.InsertU64(100);
  table.InsertU64(200);
  Result<IbltDecodeResult64> decoded = table.DecodeU64();
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(SortedU64(decoded.value().positive),
            (std::vector<uint64_t>{100, 200}));
  EXPECT_TRUE(decoded.value().negative.empty());
}

TEST(IbltTest, EraseUnseenKeyDecodesNegative) {
  Iblt table(IbltConfig::ForDifference(8, 42));
  table.EraseU64(77);
  Result<IbltDecodeResult64> decoded = table.DecodeU64();
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().positive.empty());
  EXPECT_EQ(decoded.value().negative, (std::vector<uint64_t>{77}));
}

TEST(IbltTest, InsertEraseCancelsExactly) {
  Iblt table(IbltConfig::ForDifference(8, 42));
  for (uint64_t k = 0; k < 1000; ++k) table.InsertU64(k);
  for (uint64_t k = 0; k < 1000; ++k) table.EraseU64(k);
  EXPECT_TRUE(table.IsZero());
}

TEST(IbltTest, MixedSignsDecodeAsTwoSets) {
  Iblt table(IbltConfig::ForDifference(10, 7));
  table.InsertU64(1);
  table.InsertU64(2);
  table.EraseU64(3);
  table.EraseU64(4);
  Result<IbltDecodeResult64> decoded = table.DecodeU64();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(SortedU64(decoded.value().positive),
            (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(SortedU64(decoded.value().negative),
            (std::vector<uint64_t>{3, 4}));
}

TEST(IbltTest, SubtractYieldsSymmetricDifference) {
  IbltConfig config = IbltConfig::ForDifference(10, 5);
  Iblt alice(config), bob(config);
  // Shared elements 0..999; Alice extra {5000, 5001}; Bob extra {6000}.
  for (uint64_t k = 0; k < 1000; ++k) {
    alice.InsertU64(k);
    bob.InsertU64(k);
  }
  alice.InsertU64(5000);
  alice.InsertU64(5001);
  bob.InsertU64(6000);
  ASSERT_TRUE(alice.Subtract(bob).ok());
  Result<IbltDecodeResult64> decoded = alice.DecodeU64();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(SortedU64(decoded.value().positive),
            (std::vector<uint64_t>{5000, 5001}));
  EXPECT_EQ(SortedU64(decoded.value().negative),
            (std::vector<uint64_t>{6000}));
}

TEST(IbltTest, SubtractMismatchedConfigRejected) {
  Iblt a(IbltConfig::ForDifference(10, 5));
  Iblt b(IbltConfig::ForDifference(10, 6));  // Different seed.
  EXPECT_EQ(a.Subtract(b).code(), StatusCode::kInvalidArgument);
}

TEST(IbltTest, AddThenSubtractRoundTrips) {
  IbltConfig config = IbltConfig::ForDifference(10, 5);
  Iblt a(config), b(config);
  a.InsertU64(1);
  b.InsertU64(2);
  Iblt sum = a;
  ASSERT_TRUE(sum.Add(b).ok());
  ASSERT_TRUE(sum.Subtract(b).ok());
  Result<IbltDecodeResult64> decoded = sum.DecodeU64();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().positive, (std::vector<uint64_t>{1}));
}

TEST(IbltTest, OverloadedTableFailsDetectably) {
  // 200 keys in a 12-cell table cannot decode; failure must be detected.
  Iblt table(IbltConfig::ForDifference(1, 3));
  for (uint64_t k = 0; k < 200; ++k) table.InsertU64(k);
  Result<IbltDecodeResult64> decoded = table.DecodeU64();
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDecodeFailure);
}

TEST(IbltTest, DecodePartialReportsIncomplete) {
  Iblt table(IbltConfig::ForDifference(1, 3));
  for (uint64_t k = 0; k < 200; ++k) table.InsertU64(k);
  IbltPartialDecode partial = table.DecodePartial();
  EXPECT_FALSE(partial.complete);
}

TEST(IbltTest, DecodeIsNonDestructive) {
  Iblt table(IbltConfig::ForDifference(8, 9));
  table.InsertU64(5);
  ASSERT_TRUE(table.DecodeU64().ok());
  Result<IbltDecodeResult64> again = table.DecodeU64();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().positive, (std::vector<uint64_t>{5}));
}

TEST(IbltTest, DuplicateKeyInsertionsDoNotDecode) {
  // Two copies of a key never become a pure cell: sets only.
  Iblt table(IbltConfig::ForDifference(8, 9));
  table.InsertU64(5);
  table.InsertU64(5);
  Result<IbltDecodeResult64> decoded = table.DecodeU64();
  EXPECT_FALSE(decoded.ok());
}

TEST(IbltTest, SerializeDeserializeRoundTrip) {
  IbltConfig config = IbltConfig::ForDifference(10, 21);
  Iblt table(config);
  for (uint64_t k = 0; k < 500; ++k) table.InsertU64(k * 3);
  table.EraseU64(999999);
  ByteWriter writer;
  table.Serialize(&writer);
  ByteReader reader(writer.bytes());
  Result<Iblt> restored = Iblt::Deserialize(&reader, config);
  ASSERT_TRUE(restored.ok());
  // Subtracting the restored copy from the original must cancel exactly.
  ASSERT_TRUE(table.Subtract(restored.value()).ok());
  EXPECT_TRUE(table.IsZero());
}

TEST(IbltTest, FixedSerializationHasExactSize) {
  IbltConfig config = IbltConfig::ForDifference(7, 22);
  Iblt table(config);
  table.InsertU64(1);
  ByteWriter writer;
  table.SerializeFixed(&writer);
  EXPECT_EQ(writer.size(), config.FixedSerializedSize());
  ByteReader reader(writer.bytes());
  Result<Iblt> restored = Iblt::DeserializeFixed(&reader, config);
  ASSERT_TRUE(restored.ok());
  Result<IbltDecodeResult64> decoded = restored.value().DecodeU64();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().positive, (std::vector<uint64_t>{1}));
}

TEST(IbltTest, DeserializeTruncatedRejected) {
  IbltConfig config = IbltConfig::ForDifference(7, 23);
  std::vector<uint8_t> junk = {1, 2, 3};
  ByteReader reader(junk);
  Result<Iblt> restored = Iblt::Deserialize(&reader, config);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
}

TEST(BlobIbltTest, WideKeysRoundTrip) {
  IbltConfig config = IbltConfig::ForDifference(6, 31, /*key_width=*/24);
  Iblt table(config);
  std::vector<uint8_t> blob_a(24, 0xaa);
  std::vector<uint8_t> blob_b(24, 0);
  blob_b[23] = 7;
  table.Insert(blob_a);
  table.Erase(blob_b);
  Result<IbltDecodeResult> decoded = table.Decode();
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().positive.size(), 1u);
  ASSERT_EQ(decoded.value().negative.size(), 1u);
  EXPECT_EQ(decoded.value().positive[0], blob_a);
  EXPECT_EQ(decoded.value().negative[0], blob_b);
}

// --- Property sweep: decode success across difference sizes and key
// widths (Theorem 2.1: O(d) cells recover d keys w.h.p.). ---
struct SweepParam {
  size_t diff;
  size_t key_width;
};

class IbltDecodeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(IbltDecodeSweep, DecodesAtSizedCapacity) {
  const SweepParam param = GetParam();
  int successes = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    IbltConfig config =
        IbltConfig::ForDifference(param.diff, static_cast<uint64_t>(1000 + trial),
                                  param.key_width);
    Iblt table(config);
    Rng rng(static_cast<uint64_t>(trial) * 31 + param.diff);
    std::set<std::vector<uint8_t>> keys;
    while (keys.size() < param.diff) {
      std::vector<uint8_t> key(param.key_width);
      for (auto& b : key) b = static_cast<uint8_t>(rng.NextU64());
      keys.insert(key);
    }
    for (const auto& key : keys) table.Insert(key);
    Result<IbltDecodeResult> decoded = table.Decode();
    if (decoded.ok() && decoded.value().positive.size() == param.diff) {
      ++successes;
    }
  }
  // ForDifference targets w.h.p. decode; allow a couple of unlucky trials
  // (protocols amplify with retries on top of this).
  EXPECT_GE(successes, trials - 2)
      << "diff=" << param.diff << " width=" << param.key_width;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, IbltDecodeSweep,
    ::testing::Values(SweepParam{1, 8}, SweepParam{2, 8}, SweepParam{4, 8},
                      SweepParam{8, 8}, SweepParam{16, 8}, SweepParam{32, 8},
                      SweepParam{64, 8}, SweepParam{128, 8},
                      SweepParam{8, 16}, SweepParam{16, 48},
                      SweepParam{32, 100}));

// --- Property sweep: subtraction with a large shared core. ---
class IbltSubtractSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(IbltSubtractSweep, SharedCoreCancels) {
  const size_t diff = GetParam();
  IbltConfig config = IbltConfig::ForDifference(2 * diff, 777 + diff);
  Iblt alice(config), bob(config);
  Rng rng(diff);
  for (uint64_t k = 0; k < 5000; ++k) {
    uint64_t e = rng.NextU64();
    alice.InsertU64(e);
    bob.InsertU64(e);
  }
  std::vector<uint64_t> alice_only, bob_only;
  for (size_t i = 0; i < diff; ++i) {
    alice_only.push_back((1ull << 61) + i);
    bob_only.push_back((1ull << 62) + i);
    alice.InsertU64(alice_only.back());
    bob.InsertU64(bob_only.back());
  }
  ASSERT_TRUE(alice.Subtract(bob).ok());
  Result<IbltDecodeResult64> decoded = alice.DecodeU64();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(SortedU64(decoded.value().positive), alice_only);
  EXPECT_EQ(SortedU64(decoded.value().negative), bob_only);
}

INSTANTIATE_TEST_SUITE_P(Diffs, IbltSubtractSweep,
                         ::testing::Values(1, 2, 5, 10, 25, 60, 150));

}  // namespace
}  // namespace setrec
