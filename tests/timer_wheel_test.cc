// The hashed timer wheel under its tricky regimes: sub-tick rounding,
// cancel/fire id hygiene across slab reuse, cascade correctness at every
// level boundary, the conservative NextDeadlineNs contract, and a
// randomized differential check against a sorted-map reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "util/timer_wheel.h"

namespace setrec {
namespace {

constexpr uint64_t kTick = TimerWheel::kDefaultTickNs;

TEST(TimerWheelTest, ZeroDelayFiresOnNextTickNotBefore) {
  TimerWheel wheel;
  std::vector<uint64_t> fired;
  wheel.Schedule(0, 7);
  // Sub-tick advance: the zero-delay timer rounded up to one tick, so it
  // must NOT fire yet.
  EXPECT_EQ(wheel.Advance(kTick - 1, [&](uint64_t d) { fired.push_back(d); }),
            0u);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.Advance(kTick, [&](uint64_t d) { fired.push_back(d); }), 1u);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 7u);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, SubTickDelaysRoundUp) {
  TimerWheel wheel;
  std::vector<uint64_t> fired;
  wheel.Schedule(1, 1);          // 1 ns -> 1 tick
  wheel.Schedule(kTick, 2);      // exactly 1 tick
  wheel.Schedule(kTick + 1, 3);  // just over -> 2 ticks
  wheel.Advance(kTick, [&](uint64_t d) { fired.push_back(d); });
  std::sort(fired.begin(), fired.end());
  EXPECT_EQ(fired, (std::vector<uint64_t>{1, 2}));
  wheel.Advance(2 * kTick, [&](uint64_t d) { fired.push_back(d); });
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired.back(), 3u);
}

TEST(TimerWheelTest, CancelPreventsFireAndReturnsTrueOnce) {
  TimerWheel wheel;
  TimerWheel::TimerId id = wheel.Schedule(5 * kTick, 42);
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_FALSE(wheel.Cancel(id)) << "second cancel must report 'too late'";
  EXPECT_EQ(wheel.pending(), 0u);
  size_t count = 0;
  wheel.Advance(16 * kTick, [&](uint64_t) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(TimerWheelTest, CancelAfterFireReturnsFalse) {
  TimerWheel wheel;
  TimerWheel::TimerId id = wheel.Schedule(kTick, 1);
  size_t count = 0;
  wheel.Advance(2 * kTick, [&](uint64_t) { ++count; });
  EXPECT_EQ(count, 1u);
  EXPECT_FALSE(wheel.Cancel(id));
}

TEST(TimerWheelTest, StaleIdCannotCancelRecycledSlot) {
  TimerWheel wheel;
  TimerWheel::TimerId first = wheel.Schedule(kTick, 1);
  wheel.Advance(2 * kTick, [](uint64_t) {});
  // The freed node is recycled for the next timer; the old id carries a
  // stale generation and must not disarm the new occupant.
  TimerWheel::TimerId second = wheel.Schedule(kTick, 2);
  EXPECT_FALSE(wheel.Cancel(first));
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_TRUE(wheel.Cancel(second));
  EXPECT_EQ(wheel.Cancel(0), false) << "0 is the reserved null id";
}

TEST(TimerWheelTest, FiresExactlyAtLevelOneBoundary) {
  // 256 ticks is the first deadline that cannot live in level 0 at
  // schedule time: it must cascade at the window boundary and fire there.
  TimerWheel wheel;
  std::vector<uint64_t> fired;
  wheel.Schedule(256 * kTick, 1);
  wheel.Advance(255 * kTick, [&](uint64_t d) { fired.push_back(d); });
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.cascades(), 0u);
  wheel.Advance(256 * kTick, [&](uint64_t d) { fired.push_back(d); });
  EXPECT_EQ(fired, (std::vector<uint64_t>{1}));
  EXPECT_GE(wheel.cascades(), 1u);
}

TEST(TimerWheelTest, CascadePreservesSubWindowPrecision) {
  // A timer at 256+3 ticks cascades into level 0 at the boundary and must
  // then fire at its exact tick, not at the boundary.
  TimerWheel wheel;
  std::vector<uint64_t> fired;
  wheel.Schedule(259 * kTick, 9);
  wheel.Advance(258 * kTick, [&](uint64_t d) { fired.push_back(d); });
  EXPECT_TRUE(fired.empty());
  wheel.Advance(259 * kTick, [&](uint64_t d) { fired.push_back(d); });
  EXPECT_EQ(fired, (std::vector<uint64_t>{9}));
}

TEST(TimerWheelTest, LevelTwoBoundaryCascades) {
  // 65536 ticks lives in level 2; one Advance jumps the whole span and
  // must land the fire without losing the timer in any cascade.
  TimerWheel wheel;
  std::vector<uint64_t> fired;
  wheel.Schedule(65536 * kTick, 5);
  wheel.Schedule((65536 + 17) * kTick, 6);
  wheel.Advance(65535 * kTick, [&](uint64_t d) { fired.push_back(d); });
  EXPECT_TRUE(fired.empty());
  wheel.Advance(65536 * kTick, [&](uint64_t d) { fired.push_back(d); });
  EXPECT_EQ(fired, (std::vector<uint64_t>{5}));
  wheel.Advance((65536 + 17) * kTick, [&](uint64_t d) { fired.push_back(d); });
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], 6u);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CancelSurvivesCascadeRelink) {
  // Cancelling a timer AFTER it cascaded to a finer level must still work:
  // the node index (and thus the id) is stable across relinks.
  TimerWheel wheel;
  TimerWheel::TimerId id = wheel.Schedule(300 * kTick, 1);
  wheel.Advance(270 * kTick, [](uint64_t) { FAIL() << "fired early"; });
  EXPECT_TRUE(wheel.Cancel(id));
  size_t count = 0;
  wheel.Advance(512 * kTick, [&](uint64_t) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(TimerWheelTest, NextDeadlineExactInWindowConservativeBeyond) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.NextDeadlineNs(), TimerWheel::kNoDeadline);
  wheel.Schedule(10 * kTick, 1);
  EXPECT_EQ(wheel.NextDeadlineNs(), 10 * kTick);
  wheel.Advance(10 * kTick, [](uint64_t) {});
  EXPECT_EQ(wheel.NextDeadlineNs(), TimerWheel::kNoDeadline);
  // A far timer: the reported deadline is the next cascade boundary —
  // never LATER than the true deadline.
  wheel.Schedule(1000 * kTick, 2);
  EXPECT_EQ(wheel.NextDeadlineNs(), 256 * kTick);
  EXPECT_LE(wheel.NextDeadlineNs(), (10 + 1000) * kTick);
}

TEST(TimerWheelTest, FireCallbackMayRearm) {
  // The pump's idle timeout re-arms from inside the fire callback; the
  // wheel must survive Schedule() mid-batch and fire the new timer later.
  TimerWheel wheel;
  size_t fires = 0;
  wheel.Schedule(kTick, 1);
  wheel.Advance(kTick, [&](uint64_t) {
    ++fires;
    wheel.Schedule(kTick, 2);
  });
  EXPECT_EQ(fires, 1u);
  EXPECT_EQ(wheel.pending(), 1u);
  wheel.Advance(2 * kTick, [&](uint64_t d) {
    ++fires;
    EXPECT_EQ(d, 2u);
  });
  EXPECT_EQ(fires, 2u);
}

TEST(TimerWheelTest, NonZeroEpochAndHorizonClamp) {
  // The pump seeds the wheel with a live monotonic timestamp, and a
  // ludicrous delay clamps to the wheel horizon instead of wrapping.
  const uint64_t epoch = 123456789;
  TimerWheel wheel(epoch);
  std::vector<uint64_t> fired;
  wheel.Schedule(2 * kTick, 1);
  wheel.Advance(epoch + kTick, [&](uint64_t d) { fired.push_back(d); });
  EXPECT_TRUE(fired.empty());
  wheel.Advance(epoch + 2 * kTick, [&](uint64_t d) { fired.push_back(d); });
  EXPECT_EQ(fired, (std::vector<uint64_t>{1}));

  TimerWheel far;
  TimerWheel::TimerId id =
      far.Schedule(~uint64_t{0} / 2, 3);  // Beyond the 2^32-tick horizon.
  EXPECT_EQ(far.pending(), 1u);
  EXPECT_TRUE(far.Cancel(id));
}

TEST(TimerWheelTest, DifferentialAgainstSortedMapReference) {
  // Random schedule/cancel/advance trace: the wheel must fire exactly the
  // reference set, each timer no earlier than its deadline and within one
  // tick after the Advance that covers it.
  std::mt19937_64 rng(20260808);
  TimerWheel wheel;
  std::multimap<uint64_t, uint64_t> reference;  // deadline_ns -> key
  std::map<uint64_t, TimerWheel::TimerId> live;  // key -> id
  uint64_t now = 0;
  uint64_t next_key = 1;
  std::vector<uint64_t> fired;
  for (int step = 0; step < 4000; ++step) {
    const uint64_t action = rng() % 10;
    if (action < 6) {
      const uint64_t delay = rng() % (700 * kTick);
      const uint64_t key = next_key++;
      live[key] = wheel.Schedule(delay, key);
      uint64_t ticks = (delay + kTick - 1) / kTick;
      if (ticks == 0) ticks = 1;
      // Schedule is relative to the wheel cursor: floor(now / tick).
      const uint64_t due = (now / kTick + ticks) * kTick;
      reference.emplace(due, key);
    } else if (action < 8 && !live.empty()) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng() % live.size()));
      EXPECT_TRUE(wheel.Cancel(it->second));
      for (auto ref = reference.begin(); ref != reference.end(); ++ref) {
        if (ref->second == it->first) {
          reference.erase(ref);
          break;
        }
      }
      live.erase(it);
    } else {
      now += rng() % (90 * kTick);
      fired.clear();
      wheel.Advance(now, [&](uint64_t key) { fired.push_back(key); });
      std::vector<uint64_t> expected;
      // The wheel fires by tick, so everything due by floor(now/tick).
      const uint64_t frontier = (now / kTick) * kTick;
      while (!reference.empty() && reference.begin()->first <= frontier) {
        expected.push_back(reference.begin()->second);
        live.erase(reference.begin()->second);
        reference.erase(reference.begin());
      }
      std::sort(fired.begin(), fired.end());
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(fired, expected) << "divergence at step " << step;
    }
  }
  EXPECT_EQ(wheel.pending(), reference.size());
}

}  // namespace
}  // namespace setrec
