#include "apps/binary_database.h"

#include <gtest/gtest.h>

#include "core/cascading_protocol.h"
#include "core/iblt_of_iblts.h"
#include "core/multiround_protocol.h"
#include "core/naive_protocol.h"

namespace setrec {
namespace {

TEST(BinaryDatabaseTest, AddRowAndGet) {
  BinaryDatabase db(8);
  ASSERT_TRUE(db.AddRow({1, 3, 5}).ok());
  EXPECT_TRUE(db.Get(0, 1));
  EXPECT_TRUE(db.Get(0, 5));
  EXPECT_FALSE(db.Get(0, 0));
  EXPECT_EQ(db.num_rows(), 1u);
}

TEST(BinaryDatabaseTest, BadRowsRejected) {
  BinaryDatabase db(4);
  EXPECT_FALSE(db.AddRow({5}).ok());     // Column out of range.
  EXPECT_FALSE(db.AddRow({1, 1}).ok());  // Duplicate column.
}

TEST(BinaryDatabaseTest, FlipToggles) {
  BinaryDatabase db(4);
  ASSERT_TRUE(db.AddRow({0}).ok());
  ASSERT_TRUE(db.Flip(0, 2).ok());
  EXPECT_TRUE(db.Get(0, 2));
  ASSERT_TRUE(db.Flip(0, 2).ok());
  EXPECT_FALSE(db.Get(0, 2));
  EXPECT_FALSE(db.Flip(5, 0).ok());
}

TEST(BinaryDatabaseTest, FlipRandomDistinctPositions) {
  Rng rng(1);
  BinaryDatabase db = BinaryDatabase::Random(20, 30, 0.5, &rng);
  BinaryDatabase before = db;
  auto flips = db.FlipRandom(15, &rng);
  EXPECT_EQ(flips.size(), 15u);
  size_t changed = 0;
  for (size_t r = 0; r < db.num_rows(); ++r) {
    for (uint32_t c = 0; c < 30; ++c) {
      if (db.Get(r, c) != before.Get(r, c)) ++changed;
    }
  }
  EXPECT_EQ(changed, 15u);
}

TEST(BinaryDatabaseTest, RandomDensity) {
  Rng rng(2);
  BinaryDatabase db = BinaryDatabase::Random(50, 100, 0.3, &rng);
  size_t ones = 0;
  for (const auto& row : db.rows()) ones += row.size();
  EXPECT_NEAR(static_cast<double>(ones) / (50 * 100), 0.3, 0.05);
}

TEST(BinaryDatabaseTest, SameRowsAsIgnoresOrder) {
  BinaryDatabase a(4), b(4);
  ASSERT_TRUE(a.AddRow({0}).ok());
  ASSERT_TRUE(a.AddRow({1, 2}).ok());
  ASSERT_TRUE(b.AddRow({1, 2}).ok());
  ASSERT_TRUE(b.AddRow({0}).ok());
  EXPECT_TRUE(a.SameRowsAs(b));
  ASSERT_TRUE(b.Flip(0, 3).ok());
  EXPECT_FALSE(a.SameRowsAs(b));
}

class DatabaseReconcileSweep : public ::testing::TestWithParam<int> {};

TEST_P(DatabaseReconcileSweep, AllProtocolsRecover) {
  const int kind = GetParam();
  Rng rng(static_cast<uint64_t>(kind + 10));
  BinaryDatabase bob = BinaryDatabase::Random(60, 48, 0.5, &rng);
  BinaryDatabase alice = bob;
  const size_t d = 8;
  alice.FlipRandom(d, &rng);

  SsrParams params;
  params.max_child_size = 50;
  params.seed = static_cast<uint64_t>(kind + 100);
  std::unique_ptr<SetsOfSetsProtocol> protocol;
  switch (kind) {
    case 0: protocol = std::make_unique<NaiveProtocol>(params); break;
    case 1: protocol = std::make_unique<IbltOfIbltsProtocol>(params); break;
    case 2: protocol = std::make_unique<CascadingProtocol>(params); break;
    default: protocol = std::make_unique<MultiRoundProtocol>(params); break;
  }
  Channel ch;
  Result<DatabaseReconcileOutcome> out =
      ReconcileDatabases(alice, bob, *protocol, d, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out.value().recovered.SameRowsAs(alice));
}

INSTANTIATE_TEST_SUITE_P(Protocols, DatabaseReconcileSweep,
                         ::testing::Values(0, 1, 2, 3));

TEST(DatabaseReconcileTest, DuplicateRowsSurvive) {
  // Databases are bags: two identical rows must reconcile correctly via
  // the duplicate-count normalization.
  BinaryDatabase bob(8);
  ASSERT_TRUE(bob.AddRow({0, 1}).ok());
  ASSERT_TRUE(bob.AddRow({0, 1}).ok());
  ASSERT_TRUE(bob.AddRow({2}).ok());
  BinaryDatabase alice = bob;
  ASSERT_TRUE(alice.Flip(0, 5).ok());  // One copy diverges.

  SsrParams params;
  params.max_child_size = 10;
  params.seed = 7;
  IbltOfIbltsProtocol protocol(params);
  Channel ch;
  Result<DatabaseReconcileOutcome> out =
      ReconcileDatabases(alice, bob, *&protocol, 1, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out.value().recovered.SameRowsAs(alice));
  EXPECT_EQ(out.value().recovered.num_rows(), 3u);
}

TEST(DatabaseReconcileTest, UnknownDVariant) {
  Rng rng(30);
  BinaryDatabase bob = BinaryDatabase::Random(40, 32, 0.5, &rng);
  BinaryDatabase alice = bob;
  alice.FlipRandom(5, &rng);
  SsrParams params;
  params.max_child_size = 36;
  params.seed = 31;
  CascadingProtocol protocol(params);
  Channel ch;
  Result<DatabaseReconcileOutcome> out =
      ReconcileDatabases(alice, bob, protocol, std::nullopt, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out.value().recovered.SameRowsAs(alice));
}

TEST(DatabaseReconcileTest, SchemaMismatchRejected) {
  BinaryDatabase a(4), b(5);
  SsrParams params;
  params.max_child_size = 6;
  NaiveProtocol protocol(params);
  Channel ch;
  EXPECT_FALSE(ReconcileDatabases(a, b, protocol, 1, &ch).ok());
}

}  // namespace
}  // namespace setrec
