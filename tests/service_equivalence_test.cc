// Service-vs-direct equivalence: a session driven through SyncService must
// produce a BIT-IDENTICAL transcript (same messages, senders, labels,
// bytes, rounds) and the same recovered set as the blocking Reconcile call
// with the same seeds — including sessions whose Alice messages come out of
// the shared-set memoization cache.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/workload.h"
#include "service/sync_service.h"
#include "transport/endpoint.h"

namespace setrec {
namespace {

struct DirectRun {
  Result<SsrOutcome> outcome;
  std::vector<Channel::Message> transcript;
};

DirectRun RunDirect(SsrProtocolKind kind, const SsrParams& params,
                    const SetOfSets& alice, const SetOfSets& bob,
                    std::optional<size_t> known_d) {
  std::unique_ptr<SetsOfSetsProtocol> protocol = MakeSsrProtocol(kind, params);
  Channel channel;
  DirectRun run{protocol->Reconcile(alice, bob, known_d, &channel),
                channel.transcript()};
  return run;
}

std::vector<Channel::Message> DrainMirror(Endpoint* peer) {
  std::vector<Channel::Message> messages;
  Channel::Message m;
  while (peer->Poll(&m)) messages.push_back(std::move(m));
  return messages;
}

void ExpectSameTranscript(const std::vector<Channel::Message>& direct,
                          const std::vector<Channel::Message>& service,
                          const char* what) {
  ASSERT_EQ(direct.size(), service.size()) << what;
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(static_cast<int>(direct[i].from),
              static_cast<int>(service[i].from))
        << what << " message " << i;
    EXPECT_EQ(direct[i].label, service[i].label) << what << " message " << i;
    EXPECT_EQ(direct[i].payload, service[i].payload)
        << what << " message " << i;
  }
}

struct Case {
  SsrProtocolKind kind;
  bool known_d;
  WireCodec codec = WireCodec::kDense;
};

class ServiceEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(ServiceEquivalence, TranscriptsAreBitIdentical) {
  const Case& c = GetParam();
  SsrWorkloadSpec spec;
  spec.num_children = 24;
  spec.child_size = 12;
  spec.changes = 5;
  spec.seed = 17 + static_cast<uint64_t>(c.kind) * 11 + (c.known_d ? 1 : 0);
  SsrWorkload w = MakeSsrWorkload(spec);

  SsrParams params;
  params.max_child_size = spec.child_size + spec.changes + 2;
  params.max_children = spec.num_children + spec.changes;
  params.seed = spec.seed + 1000;
  params.wire_codec = c.codec;
  std::optional<size_t> known_d =
      c.known_d ? std::optional<size_t>(w.applied_changes) : std::nullopt;

  DirectRun direct = RunDirect(c.kind, params, w.alice, w.bob, known_d);
  ASSERT_TRUE(direct.outcome.ok()) << direct.outcome.status().ToString();

  SyncService service;
  auto [server_end, client_end] = Endpoint::LoopbackPair();
  SessionSpec session;
  session.label = "equivalence";
  session.protocol = c.kind;
  session.params = params;
  session.alice = std::make_shared<SetOfSets>(w.alice);
  session.bob = std::make_shared<SetOfSets>(w.bob);
  session.known_d = known_d;
  session.mirror = std::make_shared<Endpoint>(std::move(server_end));
  service.Submit(std::move(session));
  service.RunToCompletion();

  std::vector<SessionResult> results = service.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status.ToString();

  // Same bits, same rounds, same attempts, same recovery.
  EXPECT_EQ(results[0].stats.rounds, direct.outcome.value().stats.rounds);
  EXPECT_EQ(results[0].stats.bytes, direct.outcome.value().stats.bytes);
  EXPECT_EQ(results[0].stats.attempts, direct.outcome.value().stats.attempts);
  EXPECT_EQ(results[0].recovered, direct.outcome.value().recovered);
  EXPECT_EQ(results[0].recovered, Canonicalize(w.alice));

  ExpectSameTranscript(direct.transcript, DrainMirror(&client_end),
                       SsrProtocolKindName(c.kind));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ServiceEquivalence,
    ::testing::Values(Case{SsrProtocolKind::kNaive, true},
                      Case{SsrProtocolKind::kNaive, false},
                      Case{SsrProtocolKind::kIblt2, true},
                      Case{SsrProtocolKind::kIblt2, false},
                      Case{SsrProtocolKind::kCascade, true},
                      Case{SsrProtocolKind::kCascade, false},
                      Case{SsrProtocolKind::kMultiRound, true},
                      Case{SsrProtocolKind::kMultiRound, false},
                      // Same equivalence under the sparse wire codec: the
                      // memoized Alice messages are the ENCODED frames, so
                      // cache replays must stay bit-identical per codec.
                      Case{SsrProtocolKind::kNaive, true,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kNaive, false,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kIblt2, true,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kIblt2, false,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kCascade, true,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kCascade, false,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kMultiRound, true,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kMultiRound, false,
                           WireCodec::kSparse}));

TEST(ServiceCacheEquivalence, SharedAliceSessionsReplayIdenticalMessages) {
  // Many clients against one registered server set: later sessions hit the
  // Alice-message cache, and every one must still match its own direct run
  // bit for bit.
  SsrWorkloadSpec spec;
  spec.num_children = 20;
  spec.child_size = 10;
  spec.changes = 3;
  spec.seed = 99;
  SsrWorkload base = MakeSsrWorkload(spec);

  SsrParams params;
  params.max_child_size = spec.child_size + spec.changes + 2;
  params.max_children = spec.num_children + spec.changes;
  params.seed = 4242;

  SyncService service;
  auto server_set = std::make_shared<SetOfSets>(base.alice);
  service.RegisterSharedSet(server_set);

  constexpr int kClients = 8;
  std::vector<Endpoint> client_ends;
  std::vector<SetOfSets> bobs;
  for (int i = 0; i < kClients; ++i) {
    // Each client drifts from the server set by one or two element edits.
    SetOfSets bob = *server_set;
    ChildSet& child = bob[static_cast<size_t>(i) % bob.size()];
    if (child.size() > 1) {
      child.erase(child.begin() + (i % static_cast<int>(child.size())));
    }
    bob[(static_cast<size_t>(i) + 3) % bob.size()].push_back(
        (uint64_t{1} << 40) + static_cast<uint64_t>(i));
    bobs.push_back(Canonicalize(std::move(bob)));
  }

  for (int i = 0; i < kClients; ++i) {
    auto [server_end, client_end] = Endpoint::LoopbackPair();
    client_ends.push_back(std::move(client_end));
    SessionSpec session;
    session.label = "client" + std::to_string(i);
    session.protocol = SsrProtocolKind::kIblt2;
    session.params = params;
    session.alice = server_set;
    session.bob = std::make_shared<SetOfSets>(bobs[static_cast<size_t>(i)]);
    session.known_d = spec.changes + 4;
    session.mirror = std::make_shared<Endpoint>(std::move(server_end));
    service.Submit(std::move(session));
  }
  service.RunToCompletion();

  std::vector<SessionResult> results = service.TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kClients));
  EXPECT_GT(service.stats().cache_hits, 0u)
      << "shared-alice sessions should replay memoized messages";

  // Results arrive in completion order; map back to the submitted client
  // by session id (1-based submission order, as Submit documents).
  for (const SessionResult& result : results) {
    ASSERT_GE(result.id, 1u);
    ASSERT_LE(result.id, static_cast<uint64_t>(kClients));
    const int i = static_cast<int>(result.id - 1);
    ASSERT_TRUE(result.status.ok())
        << "client " << i << ": " << result.status.ToString();
    DirectRun direct =
        RunDirect(SsrProtocolKind::kIblt2, params, *server_set, bobs[static_cast<size_t>(i)],
                  spec.changes + 4);
    ASSERT_TRUE(direct.outcome.ok());
    EXPECT_EQ(result.recovered, direct.outcome.value().recovered);
    EXPECT_EQ(result.stats.bytes, direct.outcome.value().stats.bytes);
    ExpectSameTranscript(direct.transcript, DrainMirror(&client_ends[static_cast<size_t>(i)]),
                         result.label.c_str());
  }
}

TEST(ServiceCacheEquivalence, MixedCodecSessionsNeverCrossReplay) {
  // Dense and sparse sessions against ONE registered set, interleaved: the
  // Alice-message memo keys include the wire codec, so a sparse session
  // must never be served a cached dense frame (or vice versa) — each
  // session replays its own codec's direct transcript bit for bit.
  SsrWorkloadSpec spec;
  spec.num_children = 20;
  spec.child_size = 10;
  spec.changes = 3;
  spec.seed = 271;
  SsrWorkload base = MakeSsrWorkload(spec);

  SsrParams params;
  params.max_child_size = spec.child_size + spec.changes + 2;
  params.max_children = spec.num_children + spec.changes;
  params.seed = 3131;

  SyncService service;
  auto server_set = std::make_shared<SetOfSets>(base.alice);
  service.RegisterSharedSet(server_set);

  // Codec per submitted session, alternating so both sides get cache hits.
  const WireCodec codecs[] = {WireCodec::kDense, WireCodec::kSparse,
                              WireCodec::kDense, WireCodec::kSparse,
                              WireCodec::kSparse, WireCodec::kDense};
  constexpr int kClients = 6;
  std::vector<Endpoint> client_ends;
  std::vector<SetOfSets> bobs;
  for (int i = 0; i < kClients; ++i) {
    SetOfSets bob = *server_set;
    bob[static_cast<size_t>(i) % bob.size()].push_back(
        (uint64_t{1} << 41) + static_cast<uint64_t>(i));
    bobs.push_back(Canonicalize(std::move(bob)));
  }
  for (int i = 0; i < kClients; ++i) {
    auto [server_end, client_end] = Endpoint::LoopbackPair();
    client_ends.push_back(std::move(client_end));
    SessionSpec session;
    session.label = "mixed" + std::to_string(i);
    session.protocol = SsrProtocolKind::kIblt2;
    session.params = params;
    session.params.wire_codec = codecs[i];
    session.alice = server_set;
    session.bob = std::make_shared<SetOfSets>(bobs[static_cast<size_t>(i)]);
    session.known_d = spec.changes + 2;
    session.mirror = std::make_shared<Endpoint>(std::move(server_end));
    service.Submit(std::move(session));
  }
  service.RunToCompletion();

  std::vector<SessionResult> results = service.TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kClients));
  EXPECT_GT(service.stats().cache_hits, 0u);
  for (const SessionResult& result : results) {
    const int i = static_cast<int>(result.id - 1);
    ASSERT_TRUE(result.status.ok())
        << "client " << i << ": " << result.status.ToString();
    SsrParams session_params = params;
    session_params.wire_codec = codecs[i];
    DirectRun direct = RunDirect(SsrProtocolKind::kIblt2, session_params,
                                 *server_set, bobs[static_cast<size_t>(i)], spec.changes + 2);
    ASSERT_TRUE(direct.outcome.ok());
    EXPECT_EQ(result.recovered, direct.outcome.value().recovered);
    EXPECT_EQ(result.stats.bytes, direct.outcome.value().stats.bytes);
    ExpectSameTranscript(direct.transcript, DrainMirror(&client_ends[static_cast<size_t>(i)]),
                         result.label.c_str());
  }
}

TEST(ServiceOpaqueSessions, RunAlongsideSteppableOnes) {
  SsrWorkloadSpec spec;
  spec.num_children = 12;
  spec.child_size = 8;
  spec.changes = 2;
  spec.seed = 7;
  SsrWorkload w = MakeSsrWorkload(spec);

  SsrParams params;
  params.max_child_size = spec.child_size + spec.changes + 2;
  params.seed = 77;

  SyncService service;
  SessionSpec steppable;
  steppable.label = "sets";
  steppable.protocol = SsrProtocolKind::kNaive;
  steppable.params = params;
  steppable.alice = std::make_shared<SetOfSets>(w.alice);
  steppable.bob = std::make_shared<SetOfSets>(w.bob);
  steppable.known_d = w.applied_changes;
  service.Submit(std::move(steppable));

  SessionSpec opaque;
  opaque.label = "opaque";
  opaque.opaque = [](Channel* channel) {
    channel->Send(Party::kAlice, {1, 2, 3}, "blob");
    channel->Send(Party::kBob, {4}, "ack");
    return Status::Ok();
  };
  service.Submit(std::move(opaque));
  service.RunToCompletion();

  std::vector<SessionResult> results = service.TakeResults();
  ASSERT_EQ(results.size(), 2u);
  for (const SessionResult& r : results) {
    EXPECT_TRUE(r.status.ok()) << r.label << ": " << r.status.ToString();
    if (r.label == "opaque") {
      EXPECT_EQ(r.stats.rounds, 2u);
      EXPECT_EQ(r.stats.bytes, 4u);
    } else {
      EXPECT_EQ(r.recovered, Canonicalize(w.alice));
    }
  }
}

}  // namespace
}  // namespace setrec
