#include "core/protocol.h"

#include <gtest/gtest.h>

#include "core/encoding.h"
#include "core/workload.h"
#include "setrec/multiset_codec.h"

namespace setrec {
namespace {

TEST(CanonicalizeTest, SortsChildrenAndParent) {
  SetOfSets sets = {{3, 1, 2}, {9}, {0, 5}};
  SetOfSets canon = Canonicalize(sets);
  EXPECT_EQ(canon,
            (SetOfSets{{0, 5}, {1, 2, 3}, {9}}));
}

TEST(CanonicalizeTest, DedupsElementsAndChildren) {
  SetOfSets sets = {{1, 1, 2}, {2, 1}, {2, 1, 1}};
  SetOfSets canon = Canonicalize(sets);
  EXPECT_EQ(canon, (SetOfSets{{1, 2}}));
}

TEST(ParentFingerprintTest, OrderInvariant) {
  HashFamily f(1, 2);
  SetOfSets a = {{1, 2}, {3, 4}};
  SetOfSets b = {{3, 4}, {1, 2}};
  EXPECT_EQ(ParentFingerprint(a, f), ParentFingerprint(b, f));
}

TEST(ParentFingerprintTest, SensitiveToOneElement) {
  HashFamily f(3, 4);
  SetOfSets a = {{1, 2}, {3, 4}};
  SetOfSets b = {{1, 2}, {3, 5}};
  EXPECT_NE(ParentFingerprint(a, f), ParentFingerprint(b, f));
}

TEST(TotalElementsTest, Sums) {
  EXPECT_EQ(TotalElements({{1, 2}, {}, {3, 4, 5}}), 5u);
}

TEST(ValidateSetOfSetsTest, AcceptsValid) {
  SsrParams params;
  params.max_child_size = 3;
  EXPECT_TRUE(ValidateSetOfSets({{1, 2, 3}, {7}}, params).ok());
}

TEST(ValidateSetOfSetsTest, RejectsOversizedChild) {
  SsrParams params;
  params.max_child_size = 2;
  EXPECT_FALSE(ValidateSetOfSets({{1, 2, 3}}, params).ok());
}

TEST(ValidateSetOfSetsTest, RejectsUnsortedChild) {
  SsrParams params;
  EXPECT_FALSE(ValidateSetOfSets({{3, 1}}, params).ok());
}

TEST(ValidateSetOfSetsTest, RejectsOutOfSpaceElement) {
  SsrParams params;
  EXPECT_FALSE(ValidateSetOfSets({{1ull << 60}}, params).ok());
}

TEST(ValidateSetOfSetsTest, AcceptsMarkers) {
  SsrParams params;
  EXPECT_TRUE(
      ValidateSetOfSets({{1, kDuplicateCountBase + 2}}, params).ok());
}

TEST(DHatTest, MinOfDAndS) {
  SsrParams params;
  params.max_children = 10;
  EXPECT_EQ(DHat(5, params), 5u);
  EXPECT_EQ(DHat(50, params), 10u);
  params.max_children = 0;
  EXPECT_EQ(DHat(50, params), 50u);
}

TEST(ChildBlobTest, RoundTrip) {
  ChildSet child = {1, 5, 900};
  std::vector<uint8_t> blob = EncodeChildBlob(child, 10);
  EXPECT_EQ(blob.size(), ChildBlobWidth(10));
  Result<ChildSet> decoded = DecodeChildBlob(blob, 10);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), child);
}

TEST(ChildBlobTest, EmptyChild) {
  std::vector<uint8_t> blob = EncodeChildBlob({}, 4);
  Result<ChildSet> decoded = DecodeChildBlob(blob, 4);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(ChildBlobTest, CorruptPaddingRejected) {
  std::vector<uint8_t> blob = EncodeChildBlob({1}, 4);
  blob.back() = 1;  // Nonzero padding.
  EXPECT_FALSE(DecodeChildBlob(blob, 4).ok());
}

TEST(ChildBlobTest, WrongWidthRejected) {
  std::vector<uint8_t> blob = EncodeChildBlob({1}, 4);
  EXPECT_FALSE(DecodeChildBlob(blob, 5).ok());
}

TEST(ChildIbltBlobTest, RoundTrip) {
  IbltConfig config = IbltConfig::ForDifference(4, 99);
  ChildSet child = {10, 20, 30};
  std::vector<uint8_t> blob = EncodeChildIbltBlob(child, config, 0xabcdef);
  EXPECT_EQ(blob.size(), ChildIbltBlobWidth(config));
  Result<ChildEncoding> enc = ParseChildIbltBlob(blob, config);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc.value().fingerprint, 0xabcdefu);
  Result<IbltDecodeResult64> decoded = enc.value().sketch.DecodeU64();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().positive.size(), 3u);
}

TEST(WorkloadTest, AppliesRequestedChanges) {
  SsrWorkloadSpec spec;
  spec.num_children = 20;
  spec.child_size = 16;
  spec.changes = 10;
  spec.seed = 3;
  SsrWorkload w = MakeSsrWorkload(spec);
  EXPECT_EQ(w.applied_changes, 10u);
  EXPECT_EQ(w.bob.size(), 20u);
  EXPECT_NE(w.alice, w.bob);
}

TEST(WorkloadTest, ZeroChangesIdentical) {
  SsrWorkloadSpec spec;
  spec.changes = 0;
  spec.seed = 4;
  SsrWorkload w = MakeSsrWorkload(spec);
  EXPECT_EQ(w.alice, w.bob);
}

TEST(WorkloadTest, TouchedChildrenRestrictsSpread) {
  SsrWorkloadSpec spec;
  spec.num_children = 30;
  spec.child_size = 20;
  spec.changes = 12;
  spec.touched_children = 2;
  spec.seed = 5;
  SsrWorkload w = MakeSsrWorkload(spec);
  size_t differing = 0;
  for (size_t i = 0; i < w.bob.size(); ++i) {
    bool found = false;
    for (const auto& child : w.alice) {
      if (child == w.bob[i]) {
        found = true;
        break;
      }
    }
    if (!found) ++differing;
  }
  EXPECT_LE(differing, 2u);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  SsrWorkloadSpec spec;
  spec.seed = 6;
  SsrWorkload a = MakeSsrWorkload(spec);
  SsrWorkload b = MakeSsrWorkload(spec);
  EXPECT_EQ(a.alice, b.alice);
  EXPECT_EQ(a.bob, b.bob);
}

}  // namespace
}  // namespace setrec
