#include "setrec/set_reconciler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hashing/random.h"

namespace setrec {
namespace {

std::vector<uint64_t> RandomSet(Rng* rng, size_t size) {
  std::set<uint64_t> s;
  while (s.size() < size) s.insert(rng->NextU64() % (1ull << 55));
  return {s.begin(), s.end()};
}

struct Instance {
  std::vector<uint64_t> alice;
  std::vector<uint64_t> bob;
  size_t diff;
};

Instance MakeInstance(size_t shared, size_t alice_only, size_t bob_only,
                      uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> pool = RandomSet(&rng, shared + alice_only + bob_only);
  Instance inst;
  const auto shared_end = pool.begin() + static_cast<std::ptrdiff_t>(shared);
  const auto alice_end = shared_end + static_cast<std::ptrdiff_t>(alice_only);
  inst.alice.assign(pool.begin(), alice_end);
  inst.bob.assign(pool.begin(), shared_end);
  inst.bob.insert(inst.bob.end(), alice_end, pool.end());
  std::sort(inst.alice.begin(), inst.alice.end());
  std::sort(inst.bob.begin(), inst.bob.end());
  inst.diff = alice_only + bob_only;
  return inst;
}

TEST(ApplyDifferenceTest, AddsAndRemoves) {
  SetDifference diff;
  diff.remote_only = {10};
  diff.local_only = {2};
  EXPECT_EQ(ApplyDifference({1, 2, 3}, diff),
            (std::vector<uint64_t>{1, 3, 10}));
}

TEST(ApplyDifferenceTest, MultisetRemovesOneOccurrence) {
  SetDifference diff;
  diff.local_only = {5};
  EXPECT_EQ(ApplyDifference({5, 5, 7}, diff), (std::vector<uint64_t>{5, 7}));
}

TEST(IbltReconcileKnownTest, RecoversAliceExactly) {
  Instance inst = MakeInstance(500, 3, 2, 1);
  Channel ch;
  SetReconcilerOptions opt;
  opt.seed = 11;
  Result<SetReconcileOutcome> out =
      IbltReconcileKnown(inst.alice, inst.bob, inst.diff, opt, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().recovered, inst.alice);
  EXPECT_EQ(out.value().diff.remote_only.size(), 3u);
  EXPECT_EQ(out.value().diff.local_only.size(), 2u);
  EXPECT_EQ(ch.rounds(), 1u);  // Corollary 2.2: one round.
}

TEST(IbltReconcileKnownTest, CommunicationScalesWithDNotN) {
  SetReconcilerOptions opt;
  opt.seed = 12;
  Instance small_n = MakeInstance(100, 2, 2, 2);
  Instance large_n = MakeInstance(10000, 2, 2, 3);
  Channel ch_small, ch_large;
  ASSERT_TRUE(IbltReconcileKnown(small_n.alice, small_n.bob, 4, opt, &ch_small)
                  .ok());
  ASSERT_TRUE(IbltReconcileKnown(large_n.alice, large_n.bob, 4, opt, &ch_large)
                  .ok());
  // 100x the set size must not change the message size materially
  // (varint counts grow slightly).
  EXPECT_LT(ch_large.total_bytes(), 2 * ch_small.total_bytes());
}

TEST(IbltReconcileKnownTest, IdenticalSets) {
  Instance inst = MakeInstance(300, 0, 0, 4);
  Channel ch;
  SetReconcilerOptions opt;
  opt.seed = 13;
  Result<SetReconcileOutcome> out =
      IbltReconcileKnown(inst.alice, inst.bob, 2, opt, &ch);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().recovered, inst.alice);
}

TEST(IbltReconcileKnownTest, GrosslyUnderestimatedDFailsDetectably) {
  Instance inst = MakeInstance(100, 40, 40, 5);
  Channel ch;
  SetReconcilerOptions opt;
  opt.seed = 14;
  opt.max_attempts = 2;
  Result<SetReconcileOutcome> out =
      IbltReconcileKnown(inst.alice, inst.bob, 2, opt, &ch);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kExhausted);
}

TEST(IbltReconcileUnknownTest, TwoRoundsAndRecovery) {
  Instance inst = MakeInstance(2000, 6, 5, 6);
  Channel ch;
  SetReconcilerOptions opt;
  opt.seed = 15;
  Result<SetReconcileOutcome> out =
      IbltReconcileUnknown(inst.alice, inst.bob, opt, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().recovered, inst.alice);
  EXPECT_GE(ch.rounds(), 2u);  // Corollary 3.2.
}

TEST(IbltReconcileUnknownTest, LargeDifference) {
  Instance inst = MakeInstance(1000, 300, 200, 7);
  Channel ch;
  SetReconcilerOptions opt;
  opt.seed = 16;
  Result<SetReconcileOutcome> out =
      IbltReconcileUnknown(inst.alice, inst.bob, opt, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().recovered, inst.alice);
}

TEST(CharPolyReconcileTest, OneRoundExactCommunication) {
  Instance inst = MakeInstance(200, 2, 3, 8);
  Channel ch;
  SetReconcilerOptions opt;
  opt.seed = 17;
  Result<SetReconcileOutcome> out =
      CharPolyReconcile(inst.alice, inst.bob, 5, opt, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().recovered, inst.alice);
  EXPECT_EQ(ch.rounds(), 1u);
  EXPECT_EQ(ch.total_bytes(), 8 + 8 * 5u);  // Theorem 2.3: d words + size.
}

TEST(MultisetReconcileTest, RepeatsPreserved) {
  std::vector<uint64_t> bob = {1, 1, 1, 2, 5, 5};
  std::vector<uint64_t> alice = {1, 1, 2, 2, 5, 5, 9};
  Channel ch;
  SetReconcilerOptions opt;
  opt.seed = 18;
  Result<SetReconcileOutcome> out =
      MultisetReconcileKnown(alice, bob, 6, opt, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().recovered, alice);
}

class SetReconcileSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(SetReconcileSweep, IbltAndCharPolyAgree) {
  auto [shared, half_diff] = GetParam();
  Instance inst = MakeInstance(shared, half_diff, half_diff,
                               shared * 31 + half_diff);
  SetReconcilerOptions opt;
  opt.seed = shared + half_diff;
  Channel ch1, ch2;
  Result<SetReconcileOutcome> iblt =
      IbltReconcileKnown(inst.alice, inst.bob, inst.diff, opt, &ch1);
  Result<SetReconcileOutcome> poly =
      CharPolyReconcile(inst.alice, inst.bob, inst.diff, opt, &ch2);
  ASSERT_TRUE(iblt.ok()) << iblt.status().ToString();
  ASSERT_TRUE(poly.ok()) << poly.status().ToString();
  EXPECT_EQ(iblt.value().recovered, inst.alice);
  EXPECT_EQ(poly.value().recovered, inst.alice);
  EXPECT_EQ(iblt.value().diff.remote_only, poly.value().diff.remote_only);
  EXPECT_EQ(iblt.value().diff.local_only, poly.value().diff.local_only);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SetReconcileSweep,
    ::testing::Combine(::testing::Values(50, 500, 2000),
                       ::testing::Values(1, 4, 12, 30)));

}  // namespace
}  // namespace setrec
