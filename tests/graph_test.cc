#include "graph/graph.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace setrec {
namespace {

TEST(GraphTest, AddRemoveHasEdge) {
  Graph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));  // Undirected.
  EXPECT_FALSE(g.AddEdge(1, 0));  // Duplicate.
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.RemoveEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphTest, SelfLoopsRejected) {
  Graph g(3);
  EXPECT_FALSE(g.AddEdge(1, 1));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphTest, ToggleEdge) {
  Graph g(3);
  g.ToggleEdge(0, 2);
  EXPECT_TRUE(g.HasEdge(0, 2));
  g.ToggleEdge(0, 2);
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, DegreesAndNeighbors) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Neighbors(0), (std::vector<uint32_t>{1, 2, 3}));
}

TEST(GraphTest, EdgesSortedPairs) {
  Graph g(4);
  g.AddEdge(3, 1);
  g.AddEdge(2, 0);
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<uint32_t, uint32_t>{0, 2}));
  EXPECT_EQ(edges[1], (std::pair<uint32_t, uint32_t>{1, 3}));
}

TEST(GnpTest, EdgeCountConcentrates) {
  Rng rng(1);
  const size_t n = 500;
  const double p = 0.1;
  Graph g = Graph::RandomGnp(n, p, &rng);
  const double expected = p * n * (n - 1) / 2;
  const double sd = std::sqrt(expected * (1 - p));
  EXPECT_GT(g.num_edges(), expected - 6 * sd);
  EXPECT_LT(g.num_edges(), expected + 6 * sd);
}

TEST(GnpTest, ExtremeProbabilities) {
  Rng rng(2);
  Graph empty = Graph::RandomGnp(20, 0.0, &rng);
  EXPECT_EQ(empty.num_edges(), 0u);
  Graph full = Graph::RandomGnp(20, 1.0, &rng);
  EXPECT_EQ(full.num_edges(), 20u * 19 / 2);
}

TEST(GnpTest, DeterministicPerSeed) {
  Rng a(3), b(3);
  EXPECT_EQ(Graph::RandomGnp(50, 0.3, &a), Graph::RandomGnp(50, 0.3, &b));
}

TEST(GnpTest, NoSelfLoopsOrDuplicates) {
  Rng rng(4);
  Graph g = Graph::RandomGnp(100, 0.5, &rng);
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (const auto& [u, v] : g.Edges()) {
    EXPECT_LT(u, v);
    EXPECT_TRUE(seen.insert({u, v}).second);
  }
}

TEST(PerturbTest, TogglesExactCount) {
  Rng rng(5);
  Graph g = Graph::RandomGnp(50, 0.3, &rng);
  Graph before = g;
  auto toggled = g.Perturb(7, &rng);
  EXPECT_EQ(toggled.size(), 7u);
  EXPECT_EQ(Graph::EdgeDifference(before, g), 7u);
}

TEST(PerturbTest, DistinctSlots) {
  Rng rng(6);
  Graph g(30);
  auto toggled = g.Perturb(20, &rng);
  std::set<std::pair<uint32_t, uint32_t>> slots(toggled.begin(),
                                                toggled.end());
  EXPECT_EQ(slots.size(), toggled.size());
}

TEST(EdgeDifferenceTest, CountsSymmetricDifference) {
  Graph a(4), b(4);
  a.AddEdge(0, 1);
  a.AddEdge(1, 2);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  EXPECT_EQ(Graph::EdgeDifference(a, b), 2u);
  EXPECT_EQ(Graph::EdgeDifference(a, a), 0u);
}

class GnpDegreeSweep : public ::testing::TestWithParam<double> {};

TEST_P(GnpDegreeSweep, MeanDegreeMatches) {
  const double p = GetParam();
  Rng rng(static_cast<uint64_t>(p * 1000));
  const size_t n = 400;
  Graph g = Graph::RandomGnp(n, p, &rng);
  double mean = 2.0 * static_cast<double>(g.num_edges()) / static_cast<double>(n);
  EXPECT_NEAR(mean, p * (n - 1), 5 * std::sqrt(p * n));
}

INSTANTIATE_TEST_SUITE_P(Ps, GnpDegreeSweep,
                         ::testing::Values(0.01, 0.05, 0.2, 0.5, 0.9));

}  // namespace
}  // namespace setrec
