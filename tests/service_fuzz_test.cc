// Interleaving fuzz: 100+ concurrent sessions with randomized workloads,
// protocols and d-knowledge, stepped through one SyncService so their build
// phases interleave arbitrarily in the batch planner. Every session must
// recover its own Alice exactly — no cross-session bleed through the
// coalesced ApplyOps passes, the shared scratch pool, or the message cache.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/workload.h"
#include "hashing/random.h"
#include "service/sharded_service.h"
#include "service/sync_service.h"

namespace setrec {
namespace {

struct Expected {
  SetOfSets alice;
};

TEST(ServiceFuzzTest, HundredsOfInterleavedSessionsAllRecover) {
  constexpr int kSessions = 128;
  Rng rng(20260730);

  SyncServiceOptions options;
  // A tiny sharding threshold so coalesced flushes exercise the sharded
  // ApplyOps path (deterministically, via the worker test hook) even at
  // test-sized workloads.
  options.batch.sharded_min_keys = 512;
  options.batch.max_workers = 3;
  SyncService service(options);

  // A quarter of the sessions share one registered server set (cache-hit
  // path); the rest get independent random workloads.
  SsrWorkloadSpec shared_spec;
  shared_spec.num_children = 16;
  shared_spec.child_size = 8;
  shared_spec.changes = 3;
  shared_spec.seed = 555;
  SsrWorkload shared = MakeSsrWorkload(shared_spec);
  auto server_set = std::make_shared<SetOfSets>(shared.alice);
  service.RegisterSharedSet(server_set);

  std::vector<Expected> expected;
  for (int i = 0; i < kSessions; ++i) {
    SessionSpec session;
    session.label = "fuzz" + std::to_string(i);
    session.protocol = static_cast<SsrProtocolKind>(rng.NextU64() % 4);

    if (i % 4 == 0) {
      // Shared-server session: client drifts by a couple of edits.
      SetOfSets bob = *server_set;
      size_t victim = rng.NextU64() % bob.size();
      if (bob[victim].size() > 1) bob[victim].pop_back();
      bob[rng.NextU64() % bob.size()].push_back((1ull << 41) +
                                                (rng.NextU64() & 0xffff));
      bob = Canonicalize(std::move(bob));
      session.params.max_child_size = shared_spec.child_size + 6;
      session.params.max_children = shared_spec.num_children + 6;
      session.params.seed = 9000;  // Shared coins: enables memoization.
      session.alice = server_set;
      session.bob = std::make_shared<SetOfSets>(std::move(bob));
      session.known_d = 6;
      expected.push_back({*server_set});
    } else {
      SsrWorkloadSpec spec;
      spec.num_children = 8 + rng.NextU64() % 12;
      spec.child_size = 4 + rng.NextU64() % 8;
      spec.changes = 1 + rng.NextU64() % 4;
      spec.touched_children = (i % 3 == 0) ? 2 : 0;
      spec.seed = static_cast<uint64_t>(10'000 + i);
      SsrWorkload w = MakeSsrWorkload(spec);
      session.params.max_child_size = spec.child_size + spec.changes + 2;
      session.params.max_children = spec.num_children + spec.changes;
      session.params.seed = static_cast<uint64_t>(20'000 + i);
      session.known_d = (i % 2 == 0)
                            ? std::optional<size_t>(w.applied_changes)
                            : std::nullopt;
      session.alice = std::make_shared<SetOfSets>(w.alice);
      session.bob = std::make_shared<SetOfSets>(w.bob);
      expected.push_back({w.alice});
    }
    service.Submit(std::move(session));
  }

  Iblt::sharded_workers_for_test = 3;
  service.RunToCompletion();
  Iblt::sharded_workers_for_test = 0;

  std::vector<SessionResult> results = service.TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kSessions));
  // Results complete out of submission order (multi-round sessions park
  // longer); match them back by id (1-based submission order).
  for (const SessionResult& result : results) {
    ASSERT_GE(result.id, 1u);
    ASSERT_LE(result.id, static_cast<uint64_t>(kSessions));
    const Expected& want = expected[result.id - 1];
    ASSERT_TRUE(result.status.ok())
        << result.label << ": " << result.status.ToString();
    EXPECT_EQ(result.recovered, Canonicalize(want.alice)) << result.label;
  }

  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.sessions_completed, static_cast<size_t>(kSessions));
  EXPECT_EQ(stats.sessions_failed, 0u);
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
  // The coalesced flushes must actually cross the (test-sized) sharding
  // threshold — the cross-session occupancy the planner exists for.
  EXPECT_GT(stats.sharded_flushes, 0u);
  EXPECT_GE(stats.max_flush_keys, options.batch.sharded_min_keys);
}

TEST(ServiceFuzzTest, ShardedInterleavedSessionsAllRecover) {
  // The fuzz workload shape of the test above, but spread over 3 shard
  // threads (an odd count, so round-robin routing never aligns with the
  // i%4 shared-set stride): every session still recovers its own Alice —
  // no cross-session or cross-SHARD bleed through the shared cache, the
  // striped lease table, or the per-shard planners.
  constexpr int kSessions = 120;
  Rng rng(424242);

  ShardedSyncServiceOptions options;
  options.shards = 3;
  options.service.batch.sharded_min_keys = 512;
  options.service.batch.max_workers = 2;
  ShardedSyncService service(options);

  SsrWorkloadSpec shared_spec;
  shared_spec.num_children = 16;
  shared_spec.child_size = 8;
  shared_spec.changes = 3;
  shared_spec.seed = 556;
  SsrWorkload shared = MakeSsrWorkload(shared_spec);
  auto server_set = std::make_shared<SetOfSets>(shared.alice);
  service.RegisterSharedSet(server_set);

  std::vector<Expected> expected;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kSessions; ++i) {
    SessionSpec session;
    session.label = "shardfuzz" + std::to_string(i);
    session.protocol = static_cast<SsrProtocolKind>(rng.NextU64() % 4);

    if (i % 4 == 0) {
      SetOfSets bob = *server_set;
      size_t victim = rng.NextU64() % bob.size();
      if (bob[victim].size() > 1) bob[victim].pop_back();
      bob[rng.NextU64() % bob.size()].push_back((1ull << 41) +
                                                (rng.NextU64() & 0xffff));
      bob = Canonicalize(std::move(bob));
      session.params.max_child_size = shared_spec.child_size + 6;
      session.params.max_children = shared_spec.num_children + 6;
      session.params.seed = 9100;
      session.alice = server_set;
      session.bob = std::make_shared<SetOfSets>(std::move(bob));
      session.known_d = 6;
      expected.push_back({*server_set});
    } else {
      SsrWorkloadSpec spec;
      spec.num_children = 8 + rng.NextU64() % 12;
      spec.child_size = 4 + rng.NextU64() % 8;
      spec.changes = 1 + rng.NextU64() % 4;
      spec.touched_children = (i % 3 == 0) ? 2 : 0;
      spec.seed = static_cast<uint64_t>(60'000 + i);
      SsrWorkload w = MakeSsrWorkload(spec);
      session.params.max_child_size = spec.child_size + spec.changes + 2;
      session.params.max_children = spec.num_children + spec.changes;
      session.params.seed = static_cast<uint64_t>(70'000 + i);
      session.known_d = (i % 2 == 0)
                            ? std::optional<size_t>(w.applied_changes)
                            : std::nullopt;
      session.alice = std::make_shared<SetOfSets>(w.alice);
      session.bob = std::make_shared<SetOfSets>(w.bob);
      expected.push_back({w.alice});
    }
    ids.push_back(service.Submit(std::move(session)));
  }
  service.RunToCompletion();

  std::vector<SessionResult> results = service.TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kSessions));
  // Ids are per-shard residue classes; map back through submission order.
  std::unordered_map<uint64_t, size_t> index_of;
  for (size_t i = 0; i < ids.size(); ++i) index_of.emplace(ids[i], i);
  for (const SessionResult& result : results) {
    auto it = index_of.find(result.id);
    ASSERT_NE(it, index_of.end()) << result.label;
    ASSERT_TRUE(result.status.ok())
        << result.label << ": " << result.status.ToString();
    EXPECT_EQ(result.recovered, Canonicalize(expected[it->second].alice))
        << result.label;
  }

  const ServiceStats stats = service.AggregateStats();
  EXPECT_EQ(stats.sessions_completed, static_cast<size_t>(kSessions));
  EXPECT_EQ(stats.sessions_failed, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(ServiceFuzzTest, BacklogWindowDrainsEverything) {
  // A tiny in-flight window forces multi-wave admission; everything still
  // completes and the planner keeps flushing per wave.
  constexpr int kSessions = 40;
  SyncServiceOptions options;
  options.max_inflight = 7;
  SyncService service(options);

  std::vector<SetOfSets> alices;
  for (int i = 0; i < kSessions; ++i) {
    SsrWorkloadSpec spec;
    spec.num_children = 6;
    spec.child_size = 5;
    spec.changes = 2;
    spec.seed = static_cast<uint64_t>(300 + i);
    SsrWorkload w = MakeSsrWorkload(spec);
    alices.push_back(w.alice);
    SessionSpec session;
    session.label = "windowed" + std::to_string(i);
    session.protocol =
        (i % 2 == 0) ? SsrProtocolKind::kNaive : SsrProtocolKind::kCascade;
    session.params.max_child_size = spec.child_size + spec.changes + 2;
    session.params.seed = static_cast<uint64_t>(80 + i);
    session.alice = std::make_shared<SetOfSets>(w.alice);
    session.bob = std::make_shared<SetOfSets>(w.bob);
    session.known_d = w.applied_changes;
    service.Submit(std::move(session));
  }
  service.RunToCompletion();

  std::vector<SessionResult> results = service.TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kSessions));
  for (const SessionResult& result : results) {
    ASSERT_TRUE(result.status.ok())
        << result.label << ": " << result.status.ToString();
    EXPECT_EQ(result.recovered, Canonicalize(alices[result.id - 1]));
  }
}

}  // namespace
}  // namespace setrec
