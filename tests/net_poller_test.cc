// Poller backend matrix + timer-driven connection lifecycle + admission:
//
//  * Every available backend (poll always; epoll on Linux; io_uring when
//    the kernel grants a ring) passes one shared semantics suite —
//    registration, readiness, interest-0 parking, retargeting, hangup.
//  * A NetPump reaps a half-open connection that never completes its hello
//    (handshake timeout) and an established session gone byte-silent
//    (idle timeout), with the reap visible in stats AND pump metrics.
//  * Over the admission cap, a connection is shed with a parseable
//    "busy, retry-after" frame the client surfaces as kUnavailable; the
//    busy codec itself fails closed on malformed frames.
//  * MultiNetPump routes new connections to the least-loaded shard.

#include <gtest/gtest.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "net/multi_pump.h"
#include "net/net_pump.h"
#include "net/poller.h"
#include "net/stream_party.h"
#include "net/wire.h"
#include "obs/clock.h"
#include "service/sharded_service.h"
#include "service/sync_service.h"
#include "util/serialization.h"

namespace setrec {
namespace {

// ---------------------------------------------------------------------------
// Backend matrix: the shared Poller contract, run on every backend the
// host can construct.

std::unique_ptr<Poller> MakeBackend(PollerKind kind) {
  switch (kind) {
    case PollerKind::kPoll:
      return internal::MakePollPoller();
    case PollerKind::kEpoll:
      return internal::MakeEpollPoller();
    case PollerKind::kUring:
      return internal::MakeUringPoller();
    default:
      return nullptr;
  }
}

class PollerBackend : public ::testing::TestWithParam<PollerKind> {};

TEST_P(PollerBackend, ReadinessContract) {
  std::unique_ptr<Poller> poller = MakeBackend(GetParam());
  if (poller == nullptr) {
    GTEST_SKIP() << PollerKindName(GetParam()) << " unavailable here";
  }
  EXPECT_EQ(poller->kind(), GetParam());

  int a[2], b[2];
  ASSERT_EQ(::pipe(a), 0);
  ASSERT_EQ(::pipe(b), 0);
  ASSERT_TRUE(poller->Add(a[0], Poller::kRead, 41).ok());
  ASSERT_TRUE(poller->Add(b[0], Poller::kRead, 42).ok());

  // Nothing ready: a zero timeout returns promptly and empty.
  std::vector<PollerEvent> events;
  Result<size_t> n = poller->Wait(0, &events);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);

  // One byte on `a`: exactly token 41 reports readable.
  ASSERT_EQ(::write(a[1], "x", 1), 1);
  events.clear();
  n = poller->Wait(1000, &events);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), 1u);
  EXPECT_EQ(events[0].token, 41u);
  EXPECT_TRUE(events[0].readable);

  // Level-triggered: unread data reports again.
  events.clear();
  n = poller->Wait(0, &events);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), 1u);
  EXPECT_EQ(events[0].token, 41u);

  // Interest 0 parks the fd: same readable byte, no report.
  ASSERT_TRUE(poller->Modify(a[0], 0, 41).ok());
  events.clear();
  n = poller->Wait(0, &events);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);

  // Un-park with a retargeted token; both pipes ready → both reported.
  ASSERT_TRUE(poller->Modify(a[0], Poller::kRead, 141).ok());
  ASSERT_EQ(::write(b[1], "y", 1), 1);
  events.clear();
  n = poller->Wait(1000, &events);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), 2u);
  uint64_t seen = 0;
  for (const PollerEvent& event : events) seen |= event.token;
  EXPECT_EQ(seen, 141u | 42u);

  // Drain, close the write side: hangup (and EOF-readability) surfaces.
  char scratch[8];
  ASSERT_EQ(::read(a[0], scratch, sizeof scratch), 1);
  ASSERT_EQ(::read(b[0], scratch, sizeof scratch), 1);
  ::close(b[1]);
  events.clear();
  n = poller->Wait(1000, &events);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), 1u);
  EXPECT_EQ(events[0].token, 42u);
  EXPECT_TRUE(events[0].hangup || events[0].readable);

  ASSERT_TRUE(poller->Remove(a[0]).ok());
  ASSERT_TRUE(poller->Remove(b[0]).ok());
  ::close(a[0]);
  ::close(a[1]);
  ::close(b[0]);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PollerBackend,
                         ::testing::Values(PollerKind::kPoll,
                                           PollerKind::kEpoll,
                                           PollerKind::kUring),
                         [](const ::testing::TestParamInfo<PollerKind>&
                                param_info) {
                           return std::string(
                               PollerKindName(param_info.param));
                         });

TEST(PollerFactory, ExplicitRequestAndDegradation) {
  // Explicit poll always succeeds as itself.
  std::unique_ptr<Poller> poll = MakePoller(PollerKind::kPoll);
  ASSERT_NE(poll, nullptr);
  EXPECT_EQ(poll->kind(), PollerKind::kPoll);
  // An explicit request for an available backend is honored; an
  // unavailable one degrades (never null).
  for (PollerKind kind : {PollerKind::kEpoll, PollerKind::kUring}) {
    std::unique_ptr<Poller> poller = MakePoller(kind);
    ASSERT_NE(poller, nullptr);
    if (PollerBackendAvailable(kind)) {
      EXPECT_EQ(poller->kind(), kind);
    } else {
      EXPECT_NE(poller->kind(), kind);
    }
  }
}

TEST(PollerFactory, AutoHonorsEnvSteer) {
  // Save and restore: the ctest backend variants drive the whole binary
  // through this very variable.
  const char* old = ::getenv("SETREC_POLLER");
  const std::string saved = old != nullptr ? old : "";
  ::setenv("SETREC_POLLER", "poll", 1);
  std::unique_ptr<Poller> steered = MakePoller(PollerKind::kAuto);
  ASSERT_NE(steered, nullptr);
  EXPECT_EQ(steered->kind(), PollerKind::kPoll);
  if (old != nullptr) {
    ::setenv("SETREC_POLLER", saved.c_str(), 1);
  } else {
    ::unsetenv("SETREC_POLLER");
  }
}

TEST(PollerFactory, NamesRoundTrip) {
  for (PollerKind kind : {PollerKind::kAuto, PollerKind::kPoll,
                          PollerKind::kEpoll, PollerKind::kUring}) {
    Result<PollerKind> parsed = ParsePollerKind(PollerKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  Result<PollerKind> alias = ParsePollerKind("uring");
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(alias.value(), PollerKind::kUring);
  EXPECT_FALSE(ParsePollerKind("kqueue").ok());
}

// ---------------------------------------------------------------------------
// Busy-frame codec: round-trip plus fail-closed on every malformation.

TEST(BusyFrame, RoundTripAndFailClosed) {
  const Channel::Message busy = MakeBusyMessage(1500);
  ASSERT_TRUE(IsBusyMessage(busy));
  Result<uint32_t> hint = ParseBusyMessage(busy);
  ASSERT_TRUE(hint.ok());
  EXPECT_EQ(hint.value(), 1500u);

  // Unknown version byte.
  Channel::Message bad_version = busy;
  bad_version.payload[0] = 2;
  EXPECT_FALSE(ParseBusyMessage(bad_version).ok());

  // Trailing bytes after the varint.
  Channel::Message trailing = busy;
  trailing.payload.push_back(0);
  EXPECT_FALSE(ParseBusyMessage(trailing).ok());

  // Truncated (no varint at all).
  Channel::Message truncated = busy;
  truncated.payload.resize(1);
  EXPECT_FALSE(ParseBusyMessage(truncated).ok());

  // An absurd retry hint (> 1h) is rejected rather than honored.
  Channel::Message absurd{Party::kAlice, {}, kBusyLabel};
  ByteWriter writer;
  writer.PutU8(1);
  writer.PutVarint(uint64_t{2} * 60 * 60 * 1000);
  absurd.payload = writer.Take();
  EXPECT_FALSE(ParseBusyMessage(absurd).ok());
}

// ---------------------------------------------------------------------------
// Timer-driven lifecycle on a live pump.

/// Pumps until `done` or the wall deadline; returns whether `done` held.
template <typename Done>
bool PumpUntil(NetPump* pump, Done&& done, int per_pass_ms = 10,
               uint64_t budget_ns = 20'000'000'000ull) {
  const uint64_t start = obs::NowNanos();
  while (!done()) {
    if (obs::NowNanos() - start > budget_ns) return false;
    pump->PumpOnce(per_pass_ms);
  }
  return true;
}

TEST(NetPumpTimers, HalfOpenConnectionReapedByHandshakeTimeout) {
  SyncService service;
  NetPumpOptions options;
  options.handshake_timeout_ms = 40;
  NetPump pump(&service, options);

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(pump.AdoptConnection(sv[0]).ok());
  EXPECT_EQ(pump.connection_count(), 1u);

  // The client never says hello; the wheel must reap the connection even
  // though no fd event ever fires for it.
  EXPECT_TRUE(PumpUntil(&pump, [&] { return pump.connection_count() == 0; }));
  EXPECT_EQ(pump.stats().handshake_timeouts, 1u);
  EXPECT_EQ(pump.stats().closed, 1u);
  EXPECT_EQ(pump.stats().protocol_errors, 0u);  // A timeout is not garbage.
  EXPECT_EQ(pump.pump_metrics().handshake_timeouts, 1u);
  EXPECT_GE(pump.pump_metrics().timers_fired, 1u);
  ::close(sv[1]);
}

TEST(NetPumpTimers, SilentEstablishedSessionReapedByIdleTimeout) {
  SsrWorkloadSpec spec;
  spec.num_children = 8;
  spec.child_size = 6;
  spec.changes = 2;
  spec.seed = 777;
  SsrWorkload w = MakeSsrWorkload(spec);
  SsrParams params;
  params.max_child_size = spec.child_size + 4;
  params.max_children = spec.num_children + 2;
  params.seed = 778;

  SyncService service;
  const uint64_t set_id =
      service.RegisterSharedSet(std::make_shared<SetOfSets>(w.alice));
  NetPumpOptions options;
  options.idle_timeout_ms = 50;
  NetPump pump(&service, options);

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(pump.AdoptConnection(sv[0]).ok());

  // Complete the hello so a session exists, then go silent: the client
  // never reads the server's turn nor sends its own.
  HelloSpec hello;
  hello.protocol = SsrProtocolKind::kIblt2;
  hello.set_id = set_id;
  hello.params = params;
  hello.known_d = spec.changes;
  ASSERT_TRUE(SendHello(sv[1], hello).ok());

  EXPECT_TRUE(PumpUntil(&pump, [&] { return pump.connection_count() == 0; }));
  EXPECT_EQ(pump.stats().idle_timeouts, 1u);
  EXPECT_EQ(pump.stats().disconnects, 1u);  // The live session was cancelled.
  EXPECT_EQ(pump.pump_metrics().idle_timeouts, 1u);

  // The cancelled session surfaces as a failed result.
  std::vector<SessionResult> results = pump.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].status.ok());
  ::close(sv[1]);
}

TEST(NetPumpTimers, DisabledTimeoutsKeepHalfOpenConnectionAlive) {
  SyncService service;
  NetPumpOptions options;
  options.handshake_timeout_ms = 0;  // The pre-PR-10 "EOF or never" mode.
  options.idle_timeout_ms = 0;
  NetPump pump(&service, options);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(pump.AdoptConnection(sv[0]).ok());
  const uint64_t start = obs::NowNanos();
  while (obs::NowNanos() - start < 150'000'000ull) {
    pump.PumpOnce(10);
  }
  EXPECT_EQ(pump.connection_count(), 1u);
  EXPECT_EQ(pump.stats().handshake_timeouts, 0u);
  ::close(sv[1]);
  EXPECT_TRUE(PumpUntil(&pump, [&] { return pump.connection_count() == 0; }));
}

// ---------------------------------------------------------------------------
// Admission shedding, end to end through the client helper.

TEST(NetPumpAdmission, OverCapConnectionShedWithParseableBusyFrame) {
  SsrWorkloadSpec spec;
  spec.num_children = 8;
  spec.child_size = 6;
  spec.changes = 2;
  spec.seed = 991;
  SsrWorkload w = MakeSsrWorkload(spec);
  SsrParams params;
  params.max_child_size = spec.child_size + 4;
  params.max_children = spec.num_children + 2;
  params.seed = 992;

  SyncService service;
  service.RegisterSharedSet(std::make_shared<SetOfSets>(w.alice));
  NetPumpOptions options;
  options.admission_max_sessions = 1;
  options.busy_retry_after_ms = 2500;
  NetPump pump(&service, options);

  int first[2], second[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, first), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, second), 0);
  ASSERT_TRUE(pump.AdoptConnection(first[0]).ok());   // Admitted.
  ASSERT_TRUE(pump.AdoptConnection(second[0]).ok());  // Over cap: shed.
  EXPECT_EQ(pump.stats().admissions_rejected, 1u);
  EXPECT_EQ(pump.pump_metrics().admissions_rejected, 1u);

  // The shed client runs the normal session path and must surface the
  // busy refusal as kUnavailable with the server's retry hint.
  std::atomic<bool> client_done{false};
  Status client_status = Status::Ok();
  uint32_t hint_ms = 0;
  std::thread client([&] {
    HelloSpec hello;
    hello.protocol = SsrProtocolKind::kIblt2;
    hello.set_id = 1;
    hello.params = params;
    hello.known_d = spec.changes;
    Status sent = SendHello(second[1], hello);
    if (sent.ok()) {
      std::unique_ptr<SetsOfSetsProtocol> protocol =
          MakeSsrProtocol(SsrProtocolKind::kIblt2, params);
      Channel channel;
      Result<SsrOutcome> outcome =
          RunBobHalfOverFd(*protocol, w.bob, spec.changes, second[1],
                           &channel, nullptr, 0, &hint_ms);
      client_status = outcome.ok() ? Status::Ok() : outcome.status();
    } else if (std::optional<uint32_t> hint = PendingBusyHintOnFd(second[1])) {
      // The shed server can close before the hello write even lands (the
      // race real clients hit); the refusal is still in the receive queue.
      hint_ms = *hint;
      client_status = Unavailable("server busy");
    } else {
      client_status = sent;
    }
    client_done.store(true, std::memory_order_release);
  });
  EXPECT_TRUE(PumpUntil(
      &pump, [&] { return client_done.load(std::memory_order_acquire); }));
  client.join();
  EXPECT_EQ(client_status.code(), StatusCode::kUnavailable)
      << client_status.ToString();
  EXPECT_EQ(hint_ms, 2500u);

  // The shed connection closes once its busy frame flushed; the admitted
  // one is unaffected.
  EXPECT_TRUE(PumpUntil(&pump, [&] { return pump.connection_count() == 1; }));
  ::close(second[1]);
  ::close(first[1]);
  EXPECT_TRUE(PumpUntil(&pump, [&] { return pump.connection_count() == 0; }));
}

// ---------------------------------------------------------------------------
// Load-aware routing across shards.

TEST(MultiPumpRouting, NewConnectionsAvoidTheLoadedShard) {
  ShardedSyncServiceOptions service_options;
  service_options.shards = 2;
  service_options.spawn_threads = false;
  ShardedSyncService service(service_options);

  // Pin synthetic load on shard 0: sessions submitted but never stepped.
  for (int i = 0; i < 4; ++i) {
    SessionSpec spec;
    spec.label = "ballast";
    spec.opaque = [](Channel*) { return Status::Ok(); };
    service.shard(0)->Submit(std::move(spec));
  }
  ASSERT_EQ(service.LoadOf(0).total(), 4u);
  ASSERT_EQ(service.LoadOf(1).total(), 0u);

  MultiNetPump pump(&service);
  int pair_a[2], pair_b[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair_a), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair_b), 0);
  // Whatever the rotating tie-break salt says, the loaded shard loses.
  EXPECT_EQ(pump.AdoptConnection(pair_a[0]), 1u);
  EXPECT_EQ(pump.AdoptConnection(pair_b[0]), 1u);
  ::close(pair_a[1]);
  ::close(pair_b[1]);
  // Pumps were never started: the queued fds are closed by the pump
  // destructors (adopt-queue drain).
}

// ---------------------------------------------------------------------------
// STAT? carries the poller backend.

TEST(NetPumpStatExposition, ReportsPollerBackendGauge) {
  SyncService service;
  NetPumpOptions options;
  options.poller = PollerKind::kPoll;
  NetPump pump(&service, options);
  ASSERT_EQ(pump.poller_kind(), PollerKind::kPoll);

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(pump.AdoptConnection(sv[0]).ok());

  std::atomic<bool> done{false};
  Result<std::string> text = Status::Ok();
  std::thread client([&] {
    text = QueryStatsOverFd(sv[1]);
    done.store(true, std::memory_order_release);
  });
  EXPECT_TRUE(PumpUntil(
      &pump, [&] { return done.load(std::memory_order_acquire); }));
  client.join();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("setrec_pump_poller_backend{backend=\"poll\"}"),
            std::string::npos)
      << text.value();
  ::close(sv[1]);
  EXPECT_TRUE(PumpUntil(&pump, [&] { return pump.connection_count() == 0; }));
}

}  // namespace
}  // namespace setrec
