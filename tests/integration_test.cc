// Cross-module integration tests: full pipelines that exercise several
// layers at once, plus end-to-end determinism and accounting checks.

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/binary_database.h"
#include "apps/shingles.h"
#include "core/cascading_protocol.h"
#include "core/iblt_of_iblts.h"
#include "core/multiround_protocol.h"
#include "core/naive_protocol.h"
#include "core/workload.h"
#include "forest/ahu.h"
#include "forest/forest_reconciler.h"
#include "graph/degree_ordering.h"
#include "graph/separated_instance.h"
#include "setrec/set_reconciler.h"

namespace setrec {
namespace {

TEST(IntegrationTest, ProtocolsAgreeOnRecoveredParent) {
  SsrWorkloadSpec spec;
  spec.num_children = 30;
  spec.child_size = 40;
  spec.changes = 9;
  spec.seed = 1;
  SsrWorkload w = MakeSsrWorkload(spec);
  SsrParams params;
  params.max_child_size = 60;
  params.seed = 2;

  NaiveProtocol naive(params);
  IbltOfIbltsProtocol iblt2(params);
  CascadingProtocol cascade(params);
  MultiRoundProtocol multiround(params);
  const SetsOfSetsProtocol* protocols[] = {&naive, &iblt2, &cascade,
                                           &multiround};
  SetOfSets want = Canonicalize(w.alice);
  for (const SetsOfSetsProtocol* protocol : protocols) {
    Channel ch;
    Result<SsrOutcome> out =
        protocol->Reconcile(w.alice, w.bob, w.applied_changes, &ch);
    ASSERT_TRUE(out.ok()) << protocol->Name() << ": "
                          << out.status().ToString();
    EXPECT_EQ(out.value().recovered, want) << protocol->Name();
  }
}

TEST(IntegrationTest, DeterministicTranscripts) {
  // Identical seeds => byte-identical transcripts (public coins).
  SsrWorkloadSpec spec;
  spec.seed = 3;
  spec.changes = 5;
  SsrWorkload w = MakeSsrWorkload(spec);
  SsrParams params;
  params.max_child_size = 40;
  params.seed = 4;
  CascadingProtocol protocol(params);
  Channel ch1, ch2;
  ASSERT_TRUE(protocol.Reconcile(w.alice, w.bob, 5, &ch1).ok());
  ASSERT_TRUE(protocol.Reconcile(w.alice, w.bob, 5, &ch2).ok());
  ASSERT_EQ(ch1.rounds(), ch2.rounds());
  for (size_t i = 0; i < ch1.rounds(); ++i) {
    EXPECT_EQ(ch1.Receive(i).payload, ch2.Receive(i).payload);
  }
}

TEST(IntegrationTest, SetReconciliationInsideGraphPipeline) {
  // Degree-ordering graph reconciliation uses the cascading SSR and a
  // labeled-edge IBLT; verify the whole stack at once and that the bytes
  // reported by the outcome equal the channel's accounting.
  SeparatedInstanceSpec spec;
  spec.n = 800;
  spec.h = 28;
  spec.d = 1;
  spec.seed = 5;
  Result<Graph> base = MakeSeparatedGraph(spec);
  ASSERT_TRUE(base.ok());
  Rng rng(6);
  Graph alice = base.value();
  alice.Perturb(1, &rng);
  Channel ch;
  Result<GraphReconcileOutcome> rec =
      DegreeOrderingReconcile(alice, base.value(), 1, spec.h, 7, &ch);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec.value().bytes, ch.total_bytes());
  EXPECT_EQ(rec.value().rounds, ch.rounds());
}

TEST(IntegrationTest, ForestOfDatabases) {
  // Stress the multiset normalization: a forest whose reconciliation runs
  // through the same cascading protocol as a database reconciliation, with
  // shared element-space markers, in the same process.
  Rng rng(8);
  RootedForest forest_base = RootedForest::Random(400, 5, 0.2, &rng);
  RootedForest forest_alice = forest_base;
  forest_alice.Perturb(3, 5, &rng);
  Channel ch1;
  Result<ForestReconcileOutcome> forest_rec = ForestReconcile(
      forest_alice, forest_base, 3,
      std::max(forest_alice.MaxDepth(), forest_base.MaxDepth()), 9, &ch1);
  ASSERT_TRUE(forest_rec.ok()) << forest_rec.status().ToString();

  BinaryDatabase db_bob = BinaryDatabase::Random(50, 40, 0.5, &rng);
  BinaryDatabase db_alice = db_bob;
  db_alice.FlipRandom(4, &rng);
  SsrParams params;
  params.max_child_size = 44;
  params.seed = 10;
  CascadingProtocol protocol(params);
  Channel ch2;
  Result<DatabaseReconcileOutcome> db_rec =
      ReconcileDatabases(db_alice, db_bob, protocol, 4, &ch2);
  ASSERT_TRUE(db_rec.ok()) << db_rec.status().ToString();
  EXPECT_TRUE(db_rec.value().recovered.SameRowsAs(db_alice));
}

TEST(IntegrationTest, LargeScaleSSR) {
  // n = s*h = 20k elements, d = 40: the regime the paper targets (d << n).
  SsrWorkloadSpec spec;
  spec.num_children = 200;
  spec.child_size = 100;
  spec.changes = 40;
  spec.universe = 1ull << 48;
  spec.seed = 11;
  SsrWorkload w = MakeSsrWorkload(spec);
  SsrParams params;
  params.max_child_size = 120;
  params.seed = 12;
  const size_t raw_data_bytes = TotalElements(w.bob) * 8;  // ~160kB.

  CascadingProtocol cascade(params);
  Channel ch;
  Result<SsrOutcome> out =
      cascade.Reconcile(w.alice, w.bob, w.applied_changes, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().recovered, Canonicalize(w.alice));
  // The cascade must beat shipping the raw data outright even with its
  // constant factors (EXPERIMENTS.md discusses the constants).
  EXPECT_LT(ch.total_bytes(), raw_data_bytes);

  // The multi-round protocol is the communication-optimal one (Table 1):
  // it must land well below the raw data.
  MultiRoundProtocol multiround(params);
  Channel ch_mr;
  Result<SsrOutcome> out_mr =
      multiround.Reconcile(w.alice, w.bob, w.applied_changes, &ch_mr);
  ASSERT_TRUE(out_mr.ok()) << out_mr.status().ToString();
  EXPECT_EQ(out_mr.value().recovered, Canonicalize(w.alice));
  EXPECT_LT(ch_mr.total_bytes(), raw_data_bytes / 3);
}

TEST(IntegrationTest, EstimatedThenExactAgree) {
  // SSRU (estimator path) and SSRK (exact d) must recover the same parent.
  SsrWorkloadSpec spec;
  spec.num_children = 25;
  spec.child_size = 30;
  spec.changes = 7;
  spec.seed = 13;
  SsrWorkload w = MakeSsrWorkload(spec);
  SsrParams params;
  params.max_child_size = 40;
  params.seed = 14;
  MultiRoundProtocol protocol(params);
  Channel ch_known, ch_unknown;
  Result<SsrOutcome> known =
      protocol.Reconcile(w.alice, w.bob, w.applied_changes, &ch_known);
  Result<SsrOutcome> unknown =
      protocol.Reconcile(w.alice, w.bob, std::nullopt, &ch_unknown);
  ASSERT_TRUE(known.ok()) << known.status().ToString();
  ASSERT_TRUE(unknown.ok()) << unknown.status().ToString();
  EXPECT_EQ(known.value().recovered, unknown.value().recovered);
  EXPECT_GT(ch_unknown.rounds(), ch_known.rounds());  // Extra round 0.
}

TEST(IntegrationTest, ShinglePipelineOverSsrWorkload) {
  // Build a collection from synthetic documents, push it through the
  // collection reconciler, and confirm classification totals add up.
  SetOfSets bob;
  for (int i = 0; i < 8; ++i) {
    std::string text;
    for (int w2 = 0; w2 < 20; ++w2) {
      text += "w" + std::to_string(i * 37 + w2) + " ";
    }
    bob.push_back(ShingleSet(text, 4, 15));
  }
  SetOfSets alice = bob;
  alice.pop_back();
  alice.push_back(ShingleSet("totally different document text here now ok",
                             4, 15));
  alice = Canonicalize(alice);
  bob = Canonicalize(bob);
  SsrParams params;
  params.seed = 16;
  params.max_child_size = 32;
  Channel ch;
  Result<CollectionReconcileOutcome> out =
      ReconcileCollections(alice, bob, 6, params, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().collection, alice);
  EXPECT_EQ(out.value().exact_duplicates + out.value().near_duplicates +
                out.value().fresh_documents,
            out.value().collection.size());
}

}  // namespace
}  // namespace setrec
