// Split-party equivalence: per protocol × SSRK/SSRU, the Alice-half /
// Bob-half composition must produce byte-identical transcripts to the
// single-call Reconcile path — driven three ways: explicit halves over one
// shared channel, a SyncService kAliceHalf session fed through
// DeliverRemote against a locally pumped Bob half, and a kBobHalf session
// against a locally pumped Alice half. Error paths (invalid inputs) must
// terminate both halves with the same status instead of deadlocking.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/build_context.h"
#include "core/split_party.h"
#include "core/workload.h"
#include "service/sync_service.h"
#include "transport/endpoint.h"

namespace setrec {
namespace {

struct Case {
  SsrProtocolKind kind;
  bool known_d;
  WireCodec codec = WireCodec::kDense;

  std::string Name() const {
    return std::string(SsrProtocolKindName(kind)) +
           (known_d ? "_SSRK" : "_SSRU") +
           (codec == WireCodec::kSparse ? "_sparse" : "");
  }
};

struct Fixture {
  SsrParams params;
  SetOfSets alice;
  SetOfSets bob;
  std::optional<size_t> known_d;
};

Fixture MakeFixture(const Case& c) {
  SsrWorkloadSpec spec;
  spec.num_children = 20;
  spec.child_size = 10;
  spec.changes = 4;
  spec.seed = 1300 + static_cast<uint64_t>(c.kind) * 7 + (c.known_d ? 1 : 0);
  SsrWorkload w = MakeSsrWorkload(spec);
  Fixture f;
  f.params.max_child_size = spec.child_size + spec.changes + 2;
  f.params.max_children = spec.num_children + spec.changes;
  f.params.seed = spec.seed + 17;
  f.params.wire_codec = c.codec;
  f.alice = std::move(w.alice);
  f.bob = std::move(w.bob);
  if (c.known_d) f.known_d = w.applied_changes;
  return f;
}

void ExpectSameTranscript(const std::vector<Channel::Message>& want,
                          const std::vector<Channel::Message>& got,
                          const char* what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(static_cast<int>(want[i].from), static_cast<int>(got[i].from))
        << what << " message " << i;
    EXPECT_EQ(want[i].label, got[i].label) << what << " message " << i;
    EXPECT_EQ(want[i].payload, got[i].payload) << what << " message " << i;
  }
}

class SplitParty : public ::testing::TestWithParam<Case> {};

TEST_P(SplitParty, ExplicitHalvesMatchComposedReconcile) {
  const Fixture f = MakeFixture(GetParam());
  std::unique_ptr<SetsOfSetsProtocol> protocol =
      MakeSsrProtocol(GetParam().kind, f.params);

  Channel direct_channel;
  Result<SsrOutcome> direct =
      protocol->Reconcile(f.alice, f.bob, f.known_d, &direct_channel);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  // Drive the two halves by hand over one shared channel: under the inline
  // context every send pumps the peer's parked receive, so starting both
  // runs the whole ping-pong.
  Channel split_channel;
  InlineContext ctx;
  Task<Status> alice_half =
      protocol->ReconcileAsyncAlice(f.alice, f.known_d, &split_channel, &ctx);
  Task<Result<SsrOutcome>> bob_half =
      protocol->ReconcileAsyncBob(f.bob, f.known_d, &split_channel, &ctx);
  alice_half.Start();
  bob_half.Start();
  ASSERT_TRUE(alice_half.Done()) << "Alice half parked forever";
  ASSERT_TRUE(bob_half.Done()) << "Bob half parked forever";
  EXPECT_TRUE(alice_half.TakeResult().ok());
  Result<SsrOutcome> split = bob_half.TakeResult();
  ASSERT_TRUE(split.ok()) << split.status().ToString();

  EXPECT_EQ(split.value().recovered, direct.value().recovered);
  EXPECT_EQ(split.value().recovered, Canonicalize(f.alice));
  EXPECT_EQ(split.value().stats.attempts, direct.value().stats.attempts);
  ExpectSameTranscript(direct_channel.transcript(),
                       split_channel.transcript(), "explicit halves");
}

// Pumps frames between a service-hosted half session (via mirror endpoint +
// DeliverRemote) and a locally driven peer half until the peer completes.
template <typename PeerTask>
void PumpServiceAgainstLocalPeer(SyncService* service, uint64_t session_id,
                                 Endpoint* from_service, Channel* peer_channel,
                                 InlineContext* peer_ctx, PeerTask* peer_task,
                                 Party local_party) {
  // Forwards the local party's next unforwarded sends. DeliverRemote
  // gates on the service half being parked at the slot (its turn check),
  // so a rejected delivery is retried after the next Step.
  size_t forwarded = 0;
  auto forward = [&] {
    while (forwarded < peer_channel->rounds()) {
      const Channel::Message& m = peer_channel->transcript()[forwarded];
      if (m.from == local_party &&
          !service->DeliverRemote(session_id, m)) {
        return;  // Service half not at this slot yet; retry next round.
      }
      ++forwarded;
    }
  };
  for (int iteration = 0;
       iteration < 1000 &&
       (!peer_task->Done() || forwarded < peer_channel->rounds());
       ++iteration) {
    forward();
    service->Step();
    // Service-side sends travel back into the local transcript.
    Channel::Message m;
    bool delivered = false;
    while (from_service->Poll(&m)) {
      peer_channel->Send(m.from, std::move(m.payload), std::move(m.label));
      delivered = true;
    }
    if (delivered) peer_ctx->PumpReceives();
  }
  ASSERT_TRUE(peer_task->Done()) << "local peer half never finished";
  ASSERT_EQ(forwarded, peer_channel->rounds())
      << "service session never accepted the final frames";
  service->RunToCompletion();
}

TEST_P(SplitParty, ServiceAliceHalfMatchesDirectTranscript) {
  const Fixture f = MakeFixture(GetParam());
  std::unique_ptr<SetsOfSetsProtocol> protocol =
      MakeSsrProtocol(GetParam().kind, f.params);

  Channel direct_channel;
  Result<SsrOutcome> direct =
      protocol->Reconcile(f.alice, f.bob, f.known_d, &direct_channel);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  // Server side: the service hosts only Alice's half against a registered
  // shared set; its sends surface on the mirror endpoint.
  SyncService service;
  auto server_set = std::make_shared<SetOfSets>(f.alice);
  service.RegisterSharedSet(server_set);
  auto [server_end, client_end] = Endpoint::LoopbackPair();
  SessionSpec spec;
  spec.label = "alice-half";
  spec.role = SessionRole::kAliceHalf;
  spec.protocol = GetParam().kind;
  spec.params = f.params;
  spec.alice = server_set;
  spec.known_d = f.known_d;
  spec.mirror = std::make_shared<Endpoint>(std::move(server_end));
  uint64_t id = service.Submit(std::move(spec));

  // Client side: Bob's half driven locally.
  Channel bob_channel;
  InlineContext bob_ctx;
  Task<Result<SsrOutcome>> bob_half =
      protocol->ReconcileAsyncBob(f.bob, f.known_d, &bob_channel, &bob_ctx);
  bob_half.Start();
  PumpServiceAgainstLocalPeer(&service, id, &client_end, &bob_channel,
                              &bob_ctx, &bob_half, Party::kBob);

  Result<SsrOutcome> outcome = bob_half.TakeResult();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().recovered, direct.value().recovered);
  ExpectSameTranscript(direct_channel.transcript(), bob_channel.transcript(),
                       "service alice half");

  std::vector<SessionResult> results = service.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_EQ(results[0].stats.rounds, direct.value().stats.rounds);
  EXPECT_EQ(results[0].stats.bytes, direct.value().stats.bytes);
  EXPECT_TRUE(results[0].recovered.empty())
      << "Alice's half must not fabricate a recovery";
}

TEST_P(SplitParty, ServiceBobHalfMatchesDirectTranscript) {
  const Fixture f = MakeFixture(GetParam());
  std::unique_ptr<SetsOfSetsProtocol> protocol =
      MakeSsrProtocol(GetParam().kind, f.params);

  Channel direct_channel;
  Result<SsrOutcome> direct =
      protocol->Reconcile(f.alice, f.bob, f.known_d, &direct_channel);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  SyncService service;
  auto [server_end, client_end] = Endpoint::LoopbackPair();
  SessionSpec spec;
  spec.label = "bob-half";
  spec.role = SessionRole::kBobHalf;
  spec.protocol = GetParam().kind;
  spec.params = f.params;
  spec.bob = std::make_shared<SetOfSets>(f.bob);
  spec.known_d = f.known_d;
  spec.mirror = std::make_shared<Endpoint>(std::move(server_end));
  uint64_t id = service.Submit(std::move(spec));

  Channel alice_channel;
  InlineContext alice_ctx;
  Task<Status> alice_half = protocol->ReconcileAsyncAlice(
      f.alice, f.known_d, &alice_channel, &alice_ctx);
  alice_half.Start();
  PumpServiceAgainstLocalPeer(&service, id, &client_end, &alice_channel,
                              &alice_ctx, &alice_half, Party::kAlice);
  EXPECT_TRUE(alice_half.TakeResult().ok());

  std::vector<SessionResult> results = service.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  // The Bob half recovers Alice's set — the service-side result holds it.
  EXPECT_EQ(results[0].recovered, direct.value().recovered);
  ExpectSameTranscript(direct_channel.transcript(),
                       alice_channel.transcript(), "service bob half");
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, SplitParty,
    ::testing::Values(Case{SsrProtocolKind::kNaive, true},
                      Case{SsrProtocolKind::kNaive, false},
                      Case{SsrProtocolKind::kIblt2, true},
                      Case{SsrProtocolKind::kIblt2, false},
                      Case{SsrProtocolKind::kCascade, true},
                      Case{SsrProtocolKind::kCascade, false},
                      Case{SsrProtocolKind::kMultiRound, true},
                      Case{SsrProtocolKind::kMultiRound, false},
                      // The sparse wire codec must hold the same
                      // half-vs-composed equivalence: the codec reshapes
                      // table frames, never the protocol state machine.
                      Case{SsrProtocolKind::kNaive, true,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kNaive, false,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kIblt2, true,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kIblt2, false,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kCascade, true,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kCascade, false,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kMultiRound, true,
                           WireCodec::kSparse},
                      Case{SsrProtocolKind::kMultiRound, false,
                           WireCodec::kSparse}),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return param_info.param.Name();
    });

TEST(SplitPartyErrors, InvalidAliceAbortsBothHalvesWithSameStatus) {
  SsrParams params;
  params.max_child_size = 4;
  params.seed = 5;
  SetOfSets bad_alice = {{3, 2, 1}};  // Not sorted: invalid.
  SetOfSets bob = {{1, 2, 3}};
  for (SsrProtocolKind kind :
       {SsrProtocolKind::kNaive, SsrProtocolKind::kIblt2,
        SsrProtocolKind::kCascade, SsrProtocolKind::kMultiRound}) {
    std::unique_ptr<SetsOfSetsProtocol> protocol =
        MakeSsrProtocol(kind, params);
    for (std::optional<size_t> d :
         {std::optional<size_t>(2), std::optional<size_t>()}) {
      Channel channel;
      Result<SsrOutcome> outcome =
          protocol->Reconcile(bad_alice, bob, d, &channel);
      ASSERT_FALSE(outcome.ok()) << SsrProtocolKindName(kind);
      EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument)
          << SsrProtocolKindName(kind);
      // The abort frame carrying the status is on the transcript.
      ASSERT_GE(channel.rounds(), 1u);
      bool saw_abort = false;
      for (const Channel::Message& m : channel.transcript()) {
        if (IsAbortMessage(m)) saw_abort = true;
      }
      EXPECT_TRUE(saw_abort) << SsrProtocolKindName(kind);
    }
  }
}

TEST(SplitPartyErrors, InvalidBobAbortsBothHalvesWithSameStatus) {
  SsrParams params;
  params.max_child_size = 4;
  params.seed = 6;
  SetOfSets alice = {{1, 2, 3}};
  SetOfSets bad_bob = {{1, 1, 2}};  // Duplicate elements: invalid.
  for (SsrProtocolKind kind :
       {SsrProtocolKind::kNaive, SsrProtocolKind::kIblt2,
        SsrProtocolKind::kCascade, SsrProtocolKind::kMultiRound}) {
    std::unique_ptr<SetsOfSetsProtocol> protocol =
        MakeSsrProtocol(kind, params);
    for (std::optional<size_t> d :
         {std::optional<size_t>(2), std::optional<size_t>()}) {
      Channel channel;
      Result<SsrOutcome> outcome =
          protocol->Reconcile(alice, bad_bob, d, &channel);
      ASSERT_FALSE(outcome.ok()) << SsrProtocolKindName(kind);
      EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument)
          << SsrProtocolKindName(kind);
    }
  }
}

}  // namespace
}  // namespace setrec
