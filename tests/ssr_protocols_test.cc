#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>

#include "core/cascading_protocol.h"
#include "core/iblt_of_iblts.h"
#include "core/multiround_protocol.h"
#include "core/naive_protocol.h"
#include "core/protocol.h"
#include "core/workload.h"
#include "setrec/multiset_codec.h"

namespace setrec {
namespace {

enum class ProtocolKind { kNaive, kIblt2, kCascade, kMultiRound };

std::unique_ptr<SetsOfSetsProtocol> MakeProtocol(ProtocolKind kind,
                                                 const SsrParams& params) {
  switch (kind) {
    case ProtocolKind::kNaive:
      return std::make_unique<NaiveProtocol>(params);
    case ProtocolKind::kIblt2:
      return std::make_unique<IbltOfIbltsProtocol>(params);
    case ProtocolKind::kCascade:
      return std::make_unique<CascadingProtocol>(params);
    case ProtocolKind::kMultiRound:
      return std::make_unique<MultiRoundProtocol>(params);
  }
  return nullptr;
}

const char* KindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kNaive: return "naive";
    case ProtocolKind::kIblt2: return "iblt2";
    case ProtocolKind::kCascade: return "cascade";
    case ProtocolKind::kMultiRound: return "multiround";
  }
  return "?";
}

struct Case {
  ProtocolKind kind;
  bool known_d;
  size_t children;
  size_t child_size;
  size_t changes;
  size_t touched;  // 0 = spread.

  std::string Name() const {
    std::string n = KindName(kind);
    n += known_d ? "_SSRK" : "_SSRU";
    n += "_s" + std::to_string(children);
    n += "_h" + std::to_string(child_size);
    n += "_d" + std::to_string(changes);
    n += "_t" + std::to_string(touched);
    return n;
  }
};

class SsrProtocolSweep : public ::testing::TestWithParam<Case> {};

TEST_P(SsrProtocolSweep, RecoversAliceExactly) {
  const Case& c = GetParam();
  SsrWorkloadSpec spec;
  spec.num_children = c.children;
  spec.child_size = c.child_size;
  spec.changes = c.changes;
  spec.touched_children = c.touched;
  spec.seed = c.children * 131 + c.child_size * 17 + c.changes;
  SsrWorkload w = MakeSsrWorkload(spec);

  SsrParams params;
  params.max_child_size = c.child_size + c.changes + 2;
  params.max_children = c.children + c.changes;
  params.seed = spec.seed + 1;
  std::unique_ptr<SetsOfSetsProtocol> protocol = MakeProtocol(c.kind, params);

  Channel channel;
  std::optional<size_t> d =
      c.known_d ? std::optional<size_t>(w.applied_changes) : std::nullopt;
  Result<SsrOutcome> outcome =
      protocol->Reconcile(w.alice, w.bob, d, &channel);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().recovered, Canonicalize(w.alice));
  EXPECT_GT(channel.total_bytes(), 0u);
  if (c.known_d && c.kind != ProtocolKind::kMultiRound) {
    // Two rounds per attempt for the one-way protocols: Alice's data
    // message plus Bob's verdict frame (the split-party protocols put the
    // per-attempt success/failure signal on the wire; see
    // core/split_party.h).
    EXPECT_EQ(channel.rounds(),
              2 * static_cast<size_t>(outcome.value().stats.attempts));
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  const ProtocolKind kinds[] = {ProtocolKind::kNaive, ProtocolKind::kIblt2,
                                ProtocolKind::kCascade,
                                ProtocolKind::kMultiRound};
  for (ProtocolKind kind : kinds) {
    for (bool known : {true, false}) {
      cases.push_back(Case{kind, known, 16, 24, 0, 0});    // No changes.
      cases.push_back(Case{kind, known, 16, 24, 1, 0});    // Single change.
      cases.push_back(Case{kind, known, 24, 32, 6, 0});    // Spread.
      cases.push_back(Case{kind, known, 24, 32, 10, 1});   // Concentrated.
      cases.push_back(Case{kind, known, 48, 16, 12, 4});   // Few children.
      cases.push_back(Case{kind, known, 8, 64, 8, 0});     // Large children.
      cases.push_back(Case{kind, known, 64, 8, 20, 0});    // Many small.
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SsrProtocolSweep,
                         ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<Case>& param_info) {
                           return param_info.param.Name();
                         });

// --- Targeted structural behaviors ---

TEST(SsrProtocolsTest, WholeChildAddedAndRemoved) {
  // Alice adds a brand-new child set and drops one of Bob's entirely.
  SsrWorkloadSpec spec;
  spec.num_children = 12;
  spec.child_size = 6;
  spec.changes = 0;
  spec.seed = 17;
  SsrWorkload w = MakeSsrWorkload(spec);
  w.alice.push_back({100, 200, 300});
  w.alice.erase(w.alice.begin());
  w.alice = Canonicalize(w.alice);
  // Total element changes: 6 removed + 3 added = 9.
  SsrParams params;
  params.max_child_size = 10;
  params.seed = 18;
  for (int kind = 0; kind < 4; ++kind) {
    auto protocol = MakeProtocol(static_cast<ProtocolKind>(kind), params);
    Channel channel;
    Result<SsrOutcome> outcome =
        protocol->Reconcile(w.alice, w.bob, 9, &channel);
    ASSERT_TRUE(outcome.ok())
        << protocol->Name() << ": " << outcome.status().ToString();
    EXPECT_EQ(outcome.value().recovered, w.alice) << protocol->Name();
  }
}

TEST(SsrProtocolsTest, EmptyParents) {
  SsrParams params;
  params.max_child_size = 4;
  params.seed = 19;
  for (int kind = 0; kind < 4; ++kind) {
    auto protocol = MakeProtocol(static_cast<ProtocolKind>(kind), params);
    Channel channel;
    Result<SsrOutcome> outcome = protocol->Reconcile({}, {}, 1, &channel);
    ASSERT_TRUE(outcome.ok()) << protocol->Name();
    EXPECT_TRUE(outcome.value().recovered.empty());
  }
}

TEST(SsrProtocolsTest, BobEmptyAliceSmall) {
  SetOfSets alice = {{1, 2}, {3}};
  SsrParams params;
  params.max_child_size = 4;
  params.seed = 20;
  for (int kind = 0; kind < 4; ++kind) {
    auto protocol = MakeProtocol(static_cast<ProtocolKind>(kind), params);
    Channel channel;
    Result<SsrOutcome> outcome = protocol->Reconcile(alice, {}, 3, &channel);
    ASSERT_TRUE(outcome.ok())
        << protocol->Name() << ": " << outcome.status().ToString();
    EXPECT_EQ(outcome.value().recovered, alice) << protocol->Name();
  }
}

TEST(SsrProtocolsTest, InvalidInputRejected) {
  SsrParams params;
  params.max_child_size = 4;
  params.seed = 21;
  SetOfSets bad = {{3, 1}};  // Unsorted.
  for (int kind = 0; kind < 4; ++kind) {
    auto protocol = MakeProtocol(static_cast<ProtocolKind>(kind), params);
    Channel channel;
    Result<SsrOutcome> outcome = protocol->Reconcile(bad, {}, 1, &channel);
    EXPECT_FALSE(outcome.ok()) << protocol->Name();
    EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SsrProtocolsTest, NaiveRequiresH) {
  SsrParams params;  // max_child_size defaulted to 0.
  NaiveProtocol naive(params);
  Channel channel;
  EXPECT_FALSE(naive.Reconcile({}, {}, 1, &channel).ok());
}

TEST(SsrProtocolsTest, CommunicationOrderingMatchesTable1) {
  // In the dense regime with small d, Table 1 sorts protocols by
  // communication: naive > iblt2 > cascade (> multiround, whose constants
  // bite at tiny d, so we only assert it beats naive).
  SsrWorkloadSpec spec;
  spec.num_children = 32;
  spec.child_size = 128;
  spec.changes = 6;
  spec.seed = 22;
  SsrWorkload w = MakeSsrWorkload(spec);
  SsrParams params;
  params.max_child_size = 140;
  params.seed = 23;

  auto run = [&](ProtocolKind kind) -> size_t {
    auto protocol = MakeProtocol(kind, params);
    Channel channel;
    Result<SsrOutcome> outcome =
        protocol->Reconcile(w.alice, w.bob, w.applied_changes, &channel);
    EXPECT_TRUE(outcome.ok()) << protocol->Name();
    return channel.total_bytes();
  };
  size_t naive = run(ProtocolKind::kNaive);
  size_t iblt2 = run(ProtocolKind::kIblt2);
  size_t cascade = run(ProtocolKind::kCascade);
  size_t multiround = run(ProtocolKind::kMultiRound);
  EXPECT_LT(iblt2, naive);
  EXPECT_LT(cascade, naive);
  EXPECT_LT(multiround, naive);
  EXPECT_LT(cascade, iblt2 * 2);  // Same ballpark or better at small d.
}

TEST(SsrProtocolsTest, MultisetParentThroughNormalization) {
  // Duplicate children (multiset of sets, Section 3.4) via the duplicate-
  // count markers, end to end through every protocol.
  SetOfSets bob_multi = {{1, 2}, {1, 2}, {3, 4}, {5}};
  SetOfSets alice_multi = {{1, 2}, {1, 2}, {1, 2}, {3, 4, 6}};
  SetOfSets alice = NormalizeParentMultiset(alice_multi);
  SetOfSets bob = NormalizeParentMultiset(bob_multi);
  SsrParams params;
  params.max_child_size = 6;
  params.seed = 24;
  for (int kind = 0; kind < 4; ++kind) {
    auto protocol = MakeProtocol(static_cast<ProtocolKind>(kind), params);
    Channel channel;
    Result<SsrOutcome> outcome = protocol->Reconcile(alice, bob, 8, &channel);
    ASSERT_TRUE(outcome.ok())
        << protocol->Name() << ": " << outcome.status().ToString();
    Result<SetOfSets> expanded =
        ExpandParentMultiset(outcome.value().recovered);
    ASSERT_TRUE(expanded.ok());
    SetOfSets got = expanded.value();
    std::sort(got.begin(), got.end());
    SetOfSets want = alice_multi;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << protocol->Name();
  }
}

}  // namespace
}  // namespace setrec
