// Tests for the trace text exposition (the TRACE? payload): format/parse
// round-trip, the fail-closed version rule, forward-compatible skipping of
// unknown keys/phases/lines, adversarial inputs, and the two-halves merge
// (interleave, foreign-clock rebase, span coverage).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "obs/trace_text.h"

namespace setrec::obs {
namespace {

CompletedTraceEvent Ev(TracePhase phase, bool enter, uint64_t ns) {
  CompletedTraceEvent ev;
  ev.phase = phase;
  ev.enter = enter;
  ev.ns = ns;
  return ev;
}

CompletedTrace DemoTrace() {
  CompletedTrace trace;
  trace.trace_id = 0x75bcd15;
  trace.session_id = 42;
  trace.latency_ns = 812'345;
  trace.slow = true;
  trace.label = "iblt2/dense extra words";
  trace.events = {Ev(TracePhase::kSession, true, 1'000),
                  Ev(TracePhase::kRecvWait, true, 1'200),
                  Ev(TracePhase::kRecvWait, false, 4'200),
                  Ev(TracePhase::kSession, false, 813'345)};
  return trace;
}

TEST(TraceTextTest, FormatParseRoundTrip) {
  const std::string text =
      FormatTraceExposition({DemoTrace(), DemoTrace()}, "server");
  EXPECT_EQ(text.rfind(kTraceTextVersionLine, 0), 0u);
  std::vector<ParsedTrace> parsed;
  ASSERT_TRUE(ParseTraceExposition(text, &parsed));
  ASSERT_EQ(parsed.size(), 2u);
  const ParsedTrace& t = parsed[0];
  EXPECT_EQ(t.trace_id, 0x75bcd15u);
  EXPECT_EQ(t.session_id, 42u);
  EXPECT_EQ(t.latency_ns, 812'345u);
  EXPECT_TRUE(t.slow);
  EXPECT_EQ(t.side, "server");
  EXPECT_EQ(t.label, "iblt2/dense extra words");  // Labels may hold spaces.
  ASSERT_EQ(t.events.size(), 4u);
  EXPECT_EQ(t.events[1].phase, TracePhase::kRecvWait);
  EXPECT_TRUE(t.events[1].enter);
  EXPECT_EQ(t.events[1].ns, 1'200u);
  EXPECT_FALSE(t.events[2].enter);
}

TEST(TraceTextTest, EmptyStoreIsJustTheVersionLine) {
  const std::string text = FormatTraceExposition({}, "server");
  EXPECT_EQ(text, std::string(kTraceTextVersionLine) + "\n");
  std::vector<ParsedTrace> parsed;
  EXPECT_TRUE(ParseTraceExposition(text, &parsed));
  EXPECT_TRUE(parsed.empty());
}

TEST(TraceTextTest, UnknownVersionFailsClosed) {
  std::vector<ParsedTrace> parsed;
  EXPECT_FALSE(ParseTraceExposition("# setrec-trace v2\n", &parsed));
  EXPECT_FALSE(ParseTraceExposition("# setrec-metrics v1\n", &parsed));
  EXPECT_FALSE(ParseTraceExposition("", &parsed));
  EXPECT_FALSE(ParseTraceExposition("garbage", &parsed));
}

TEST(TraceTextTest, UnknownKeysPhasesAndLinesAreSkipped) {
  const std::string text =
      "# setrec-trace v1\n"
      "future-line-type something\n"
      "trace id=00000000000000ff shape=weird session=7 latency_ns=5 slow=0 "
      "label=x\n"
      "event warp-drive enter 100\n"
      "event session enter 200\n"
      "event session exit 300\n"
      "end\n";
  std::vector<ParsedTrace> parsed;
  ASSERT_TRUE(ParseTraceExposition(text, &parsed));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].trace_id, 0xffu);
  EXPECT_EQ(parsed[0].session_id, 7u);
  // The unknown phase's event is dropped; the known ones survive.
  ASSERT_EQ(parsed[0].events.size(), 2u);
  EXPECT_EQ(parsed[0].events[0].phase, TracePhase::kSession);
}

TEST(TraceTextTest, AdversarialFramesFail) {
  std::vector<ParsedTrace> parsed;
  // An event outside any trace block.
  EXPECT_FALSE(ParseTraceExposition(
      "# setrec-trace v1\nevent session enter 100\n", &parsed));
  // end without a trace.
  EXPECT_FALSE(ParseTraceExposition("# setrec-trace v1\nend\n", &parsed));
  // Malformed event shapes.
  EXPECT_FALSE(ParseTraceExposition(
      "# setrec-trace v1\ntrace id=1 session=1 latency_ns=1 slow=0 label=x\n"
      "event session sideways 100\nend\n",
      &parsed));
  EXPECT_FALSE(ParseTraceExposition(
      "# setrec-trace v1\ntrace id=1 session=1 latency_ns=1 slow=0 label=x\n"
      "event session enter notanumber\nend\n",
      &parsed));
  EXPECT_FALSE(ParseTraceExposition(
      "# setrec-trace v1\ntrace id=1 session=1 latency_ns=1 slow=0 label=x\n"
      "event session\nend\n",
      &parsed));
  // Non-numeric trace fields.
  EXPECT_FALSE(ParseTraceExposition(
      "# setrec-trace v1\ntrace id=zz session=1 latency_ns=1 slow=0 label=x\n",
      &parsed));
  EXPECT_FALSE(ParseTraceExposition(
      "# setrec-trace v1\ntrace id=1 session=-3 latency_ns=1 slow=0 label=x\n",
      &parsed));
}

TEST(TraceTextTest, PhaseNamesRoundTrip) {
  for (int i = 0; i < kTracePhaseCount; ++i) {
    const TracePhase phase = static_cast<TracePhase>(i);
    TracePhase back = TracePhase::kSession;
    ASSERT_TRUE(TracePhaseFromName(TracePhaseName(phase), &back))
        << TracePhaseName(phase);
    EXPECT_EQ(back, phase);
  }
  TracePhase out;
  EXPECT_FALSE(TracePhaseFromName("warp-drive", &out));
  EXPECT_FALSE(TracePhaseFromName("", &out));
}

ParsedTrace ClientHalf() {
  ParsedTrace client;
  client.trace_id = 0xabc;
  client.side = "client";
  // Session 1000..11000 (wall 10000). Non-session spans cover
  // [1000,2000] connect, [2000,3000] hello, [3000,10500] compute with a
  // nested recv-wait — union 9500/10000 = 95%.
  client.events = {Ev(TracePhase::kSession, true, 1'000),
                   Ev(TracePhase::kConnect, true, 1'000),
                   Ev(TracePhase::kConnect, false, 2'000),
                   Ev(TracePhase::kHello, true, 2'000),
                   Ev(TracePhase::kHello, false, 3'000),
                   Ev(TracePhase::kCompute, true, 3'000),
                   Ev(TracePhase::kRecvWait, true, 4'000),
                   Ev(TracePhase::kRecvWait, false, 8'000),
                   Ev(TracePhase::kCompute, false, 10'500),
                   Ev(TracePhase::kSession, false, 11'000)};
  return client;
}

TEST(TraceTextTest, MergeClientOnlyCoverage) {
  const MergedTimeline merged = MergeTraceTimelines(ClientHalf(), nullptr);
  EXPECT_FALSE(merged.has_server);
  EXPECT_NEAR(merged.coverage, 0.95, 1e-9);
  EXPECT_NE(merged.text.find("merged trace id=0000000000000abc"),
            std::string::npos);
  EXPECT_NE(merged.text.find("client only"), std::string::npos);
  EXPECT_NE(merged.text.find("> connect"), std::string::npos);
}

TEST(TraceTextTest, MergeSameClockInterleaves) {
  ParsedTrace server;
  server.trace_id = 0xabc;
  server.side = "server";
  server.events = {Ev(TracePhase::kSession, true, 3'500),
                   Ev(TracePhase::kRecvWait, true, 3'600),
                   Ev(TracePhase::kRecvWait, false, 9'000),
                   Ev(TracePhase::kSession, false, 9'500)};
  const MergedTimeline merged = MergeTraceTimelines(ClientHalf(), &server);
  EXPECT_TRUE(merged.has_server);
  EXPECT_NE(merged.text.find("client+server"), std::string::npos);
  // Same clock domain: the server session enter (3500) lands between the
  // client compute enter (3000) and the client recv-wait enter (4000).
  const size_t compute_at = merged.text.find("client > compute");
  const size_t server_at = merged.text.find("server > session");
  const size_t recv_at = merged.text.find("client > recv-wait");
  ASSERT_NE(compute_at, std::string::npos);
  ASSERT_NE(server_at, std::string::npos);
  ASSERT_NE(recv_at, std::string::npos);
  EXPECT_LT(compute_at, server_at);
  EXPECT_LT(server_at, recv_at);
}

TEST(TraceTextTest, MergeForeignClockRebasesOntoHello) {
  ParsedTrace server;
  server.trace_id = 0xabc;
  server.side = "server";
  // Timestamps hours away from the client's window: a different machine.
  const uint64_t base = 900'000'000'000'000ull;
  server.events = {Ev(TracePhase::kSession, true, base),
                   Ev(TracePhase::kRecvWait, true, base + 100),
                   Ev(TracePhase::kRecvWait, false, base + 5'000),
                   Ev(TracePhase::kSession, false, base + 6'000)};
  const MergedTimeline merged = MergeTraceTimelines(ClientHalf(), &server);
  EXPECT_TRUE(merged.has_server);
  // Rebased onto the client hello exit (3000 abs = +2.000 us relative):
  // the server enter lands right at the hello exit — inside the client
  // timeline — instead of 900 seconds off the chart.
  const size_t server_at = merged.text.find("server > session");
  const size_t hello_at = merged.text.find("client < hello");
  ASSERT_NE(server_at, std::string::npos);
  ASSERT_NE(hello_at, std::string::npos);
  EXPECT_LT(hello_at, server_at);
  EXPECT_EQ(merged.text.find("+900000"), std::string::npos);
}

TEST(TraceTextTest, MergeWithoutSessionSpanFailsSoft) {
  ParsedTrace client;
  client.trace_id = 1;
  client.events = {Ev(TracePhase::kConnect, true, 100),
                   Ev(TracePhase::kConnect, false, 200)};
  const MergedTimeline merged = MergeTraceTimelines(client, nullptr);
  EXPECT_EQ(merged.coverage, 0.0);
  EXPECT_NE(merged.text.find("session span missing"), std::string::npos);
}

}  // namespace
}  // namespace setrec::obs
