#include "transport/channel.h"

#include <gtest/gtest.h>

#include "util/serialization.h"

namespace setrec {
namespace {

TEST(ChannelTest, CountsBytesAndRounds) {
  Channel ch;
  EXPECT_EQ(ch.rounds(), 0u);
  ch.Send(Party::kAlice, {1, 2, 3}, "m1");
  ch.Send(Party::kBob, {4, 5}, "m2");
  EXPECT_EQ(ch.rounds(), 2u);
  EXPECT_EQ(ch.total_bytes(), 5u);
  EXPECT_EQ(ch.bytes_from(Party::kAlice), 3u);
  EXPECT_EQ(ch.bytes_from(Party::kBob), 2u);
}

TEST(ChannelTest, ReceiveReturnsPayloadAndLabel) {
  Channel ch;
  size_t idx = ch.Send(Party::kAlice, {9, 8}, "hello");
  const Channel::Message& m = ch.Receive(idx);
  EXPECT_EQ(m.from, Party::kAlice);
  EXPECT_EQ(m.payload, (std::vector<uint8_t>{9, 8}));
  EXPECT_EQ(m.label, "hello");
}

TEST(ChannelTest, ResetClearsEverything) {
  Channel ch;
  ch.Send(Party::kAlice, {1}, "");
  ch.Reset();
  EXPECT_EQ(ch.rounds(), 0u);
  EXPECT_EQ(ch.total_bytes(), 0u);
  EXPECT_TRUE(ch.transcript().empty());
}

TEST(ChannelTest, EmptyPayloadCountsAsRound) {
  // The paper counts messages, not bytes.
  Channel ch;
  ch.Send(Party::kBob, {}, "empty");
  EXPECT_EQ(ch.rounds(), 1u);
  EXPECT_EQ(ch.total_bytes(), 0u);
}

TEST(PackTranscriptTest, RoundTripsThroughByteReader) {
  Channel sub;
  sub.Send(Party::kAlice, {1, 2, 3}, "a");
  sub.Send(Party::kAlice, {}, "b");
  sub.Send(Party::kAlice, {7}, "c");
  std::vector<uint8_t> packed = PackTranscript(sub);

  ByteReader reader(packed);
  uint64_t count = 0;
  ASSERT_TRUE(reader.GetVarint(&count));
  EXPECT_EQ(count, 3u);
  std::vector<uint8_t> msg;
  ASSERT_TRUE(reader.GetLengthPrefixed(&msg));
  EXPECT_EQ(msg, (std::vector<uint8_t>{1, 2, 3}));
  ASSERT_TRUE(reader.GetLengthPrefixed(&msg));
  EXPECT_TRUE(msg.empty());
  ASSERT_TRUE(reader.GetLengthPrefixed(&msg));
  EXPECT_EQ(msg, (std::vector<uint8_t>{7}));
  EXPECT_TRUE(reader.empty());
}

TEST(ForwardAsSingleMessageTest, AccountsSubBytesOnce) {
  Channel sub;
  sub.Send(Party::kAlice, std::vector<uint8_t>(100, 1), "big");
  sub.Send(Party::kAlice, std::vector<uint8_t>(50, 2), "small");
  Channel main;
  ForwardAsSingleMessage(sub, Party::kAlice, &main, "bundle");
  EXPECT_EQ(main.rounds(), 1u);
  // Payloads plus a few framing bytes.
  EXPECT_GE(main.total_bytes(), 150u);
  EXPECT_LE(main.total_bytes(), 160u);
}

TEST(PartyTest, Names) {
  EXPECT_STREQ(PartyName(Party::kAlice), "Alice");
  EXPECT_STREQ(PartyName(Party::kBob), "Bob");
}

}  // namespace
}  // namespace setrec
