#include "transport/channel.h"

#include <gtest/gtest.h>

#include "util/serialization.h"

namespace setrec {
namespace {

TEST(ChannelTest, CountsBytesAndRounds) {
  Channel ch;
  EXPECT_EQ(ch.rounds(), 0u);
  ch.Send(Party::kAlice, {1, 2, 3}, "m1");
  ch.Send(Party::kBob, {4, 5}, "m2");
  EXPECT_EQ(ch.rounds(), 2u);
  EXPECT_EQ(ch.total_bytes(), 5u);
  EXPECT_EQ(ch.bytes_from(Party::kAlice), 3u);
  EXPECT_EQ(ch.bytes_from(Party::kBob), 2u);
}

TEST(ChannelTest, ReceiveReturnsPayloadAndLabel) {
  Channel ch;
  size_t idx = ch.Send(Party::kAlice, {9, 8}, "hello");
  const Channel::Message& m = ch.Receive(idx);
  EXPECT_EQ(m.from, Party::kAlice);
  EXPECT_EQ(m.payload, (std::vector<uint8_t>{9, 8}));
  EXPECT_EQ(m.label, "hello");
}

TEST(ChannelTest, ResetClearsEverything) {
  Channel ch;
  ch.Send(Party::kAlice, {1}, "");
  ch.Reset();
  EXPECT_EQ(ch.rounds(), 0u);
  EXPECT_EQ(ch.total_bytes(), 0u);
  EXPECT_TRUE(ch.transcript().empty());
}

TEST(ChannelTest, EmptyPayloadCountsAsRound) {
  // The paper counts messages, not bytes.
  Channel ch;
  ch.Send(Party::kBob, {}, "empty");
  EXPECT_EQ(ch.rounds(), 1u);
  EXPECT_EQ(ch.total_bytes(), 0u);
}

TEST(PackTranscriptTest, RoundTripsFullMessages) {
  // Mixed senders and labels: the packed form must preserve attribution.
  Channel sub;
  sub.Send(Party::kAlice, {1, 2, 3}, "a");
  sub.Send(Party::kBob, {}, "");
  sub.Send(Party::kAlice, {7}, "final");
  std::vector<uint8_t> packed = PackTranscript(sub);

  ByteReader reader(packed);
  std::vector<Channel::Message> messages;
  ASSERT_TRUE(UnpackTranscript(&reader, &messages));
  EXPECT_TRUE(reader.empty());
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(messages[0].from, Party::kAlice);
  EXPECT_EQ(messages[0].label, "a");
  EXPECT_EQ(messages[0].payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(messages[1].from, Party::kBob);
  EXPECT_EQ(messages[1].label, "");
  EXPECT_TRUE(messages[1].payload.empty());
  EXPECT_EQ(messages[2].from, Party::kAlice);
  EXPECT_EQ(messages[2].label, "final");
  EXPECT_EQ(messages[2].payload, (std::vector<uint8_t>{7}));
}

TEST(PackTranscriptTest, SkipAdvancesPastBlock) {
  Channel sub;
  sub.Send(Party::kAlice, {1, 2, 3}, "a");
  sub.Send(Party::kBob, {4}, "b");
  std::vector<uint8_t> packed = PackTranscript(sub);
  packed.push_back(0x5a);  // Trailing section after the transcript.

  ByteReader reader(packed);
  ASSERT_TRUE(SkipPackedTranscript(&reader));
  uint8_t tail = 0;
  ASSERT_TRUE(reader.GetU8(&tail));
  EXPECT_EQ(tail, 0x5a);
  EXPECT_TRUE(reader.empty());
}

TEST(PackTranscriptTest, TruncatedBlockRejected) {
  Channel sub;
  sub.Send(Party::kAlice, std::vector<uint8_t>(40, 9), "label");
  std::vector<uint8_t> packed = PackTranscript(sub);
  for (size_t cut : {packed.size() - 1, packed.size() / 2, size_t{1}}) {
    ByteReader reader(packed.data(), cut);
    std::vector<Channel::Message> messages;
    EXPECT_FALSE(UnpackTranscript(&reader, &messages)) << "cut=" << cut;
    ByteReader skip_reader(packed.data(), cut);
    EXPECT_FALSE(SkipPackedTranscript(&skip_reader)) << "cut=" << cut;
  }
}

TEST(ForwardAsSingleMessageTest, AccountsSubBytesOnce) {
  Channel sub;
  sub.Send(Party::kAlice, std::vector<uint8_t>(100, 1), "big");
  sub.Send(Party::kAlice, std::vector<uint8_t>(50, 2), "small");
  Channel main;
  ForwardAsSingleMessage(sub, Party::kAlice, &main, "bundle");
  EXPECT_EQ(main.rounds(), 1u);
  // Payloads plus per-message framing (count, sender bytes, labels "big"
  // and "small" with their length prefixes, payload length prefixes).
  EXPECT_GE(main.total_bytes(), 150u);
  EXPECT_LE(main.total_bytes(), 175u);
}

TEST(PartyTest, Names) {
  EXPECT_STREQ(PartyName(Party::kAlice), "Alice");
  EXPECT_STREQ(PartyName(Party::kBob), "Bob");
}

}  // namespace
}  // namespace setrec
