#include "hashing/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace setrec {
namespace {

TEST(SplitMix64Test, Deterministic) {
  uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t s = 42;
  uint64_t a = SplitMix64(&s);
  uint64_t b = SplitMix64(&s);
  EXPECT_NE(a, b);
}

TEST(Mix64Test, StatelessAndInjectiveOnSample) {
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 10000; ++x) outputs.insert(Mix64(x));
  EXPECT_EQ(outputs.size(), 10000u);  // SplitMix64 finalizer is a bijection.
  EXPECT_EQ(Mix64(123), Mix64(123));
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, UniformU64InRange) {
  Rng rng(11);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64CoversSmallRange) {
  Rng rng(12);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformU64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(14);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(15);
  int count = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) count += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(count) / trials, 0.3, 0.02);
}

TEST(RngTest, GeometricSkipMean) {
  // E[skip] = (1-p)/p.
  Rng rng(16);
  const double p = 0.1;
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.GeometricSkip(p));
  }
  EXPECT_NEAR(sum / trials, (1 - p) / p, 0.5);
}

TEST(RngTest, GeometricSkipPOneIsZero) {
  Rng rng(17);
  EXPECT_EQ(rng.GeometricSkip(1.0), 0u);
}

TEST(DeriveSeedTest, DistinctTagsDistinctSeeds) {
  std::set<uint64_t> seeds;
  for (uint64_t tag = 0; tag < 1000; ++tag) {
    seeds.insert(DeriveSeed(99, tag));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeedTest, Deterministic) {
  EXPECT_EQ(DeriveSeed(5, 6), DeriveSeed(5, 6));
  EXPECT_NE(DeriveSeed(5, 6), DeriveSeed(6, 5));
}

TEST(RngTest, ChiSquaredByteUniformity) {
  // Crude uniformity check on the low byte of the generator.
  Rng rng(18);
  std::vector<int> counts(256, 0);
  const int trials = 256 * 200;
  for (int i = 0; i < trials; ++i) counts[rng.NextU64() & 0xff]++;
  double chi2 = 0;
  const double expected = trials / 256.0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 255 dof: mean 255, sd ~22.6; allow 6 sigma.
  EXPECT_LT(chi2, 255 + 6 * 22.6);
}

}  // namespace
}  // namespace setrec
