#include "util/serialization.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

namespace setrec {
namespace {

TEST(ByteWriterTest, FixedWidthLittleEndian) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0102030405060708ull);
  const std::vector<uint8_t>& b = w.bytes();
  ASSERT_EQ(b.size(), 1 + 2 + 4 + 8u);
  EXPECT_EQ(b[0], 0xab);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0x12);
  EXPECT_EQ(b[3], 0xef);
  EXPECT_EQ(b[6], 0xde);
  EXPECT_EQ(b[7], 0x08);
  EXPECT_EQ(b[14], 0x01);
}

TEST(ByteWriterTest, RoundTripAllFixed) {
  ByteWriter w;
  w.PutU8(7);
  w.PutU16(65535);
  w.PutU32(0);
  w.PutU64(std::numeric_limits<uint64_t>::max());
  ByteReader r(w.bytes());
  uint8_t a;
  uint16_t b;
  uint32_t c;
  uint64_t d;
  ASSERT_TRUE(r.GetU8(&a));
  ASSERT_TRUE(r.GetU16(&b));
  ASSERT_TRUE(r.GetU32(&c));
  ASSERT_TRUE(r.GetU64(&d));
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 65535);
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(d, std::numeric_limits<uint64_t>::max());
  EXPECT_TRUE(r.empty());
}

TEST(VarintTest, SingleByteValues) {
  for (uint64_t v : {0ull, 1ull, 127ull}) {
    ByteWriter w;
    w.PutVarint(v);
    EXPECT_EQ(w.size(), 1u) << v;
    ByteReader r(w.bytes());
    uint64_t out = 0;
    ASSERT_TRUE(r.GetVarint(&out));
    EXPECT_EQ(out, v);
  }
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  ByteWriter w;
  w.PutVarint(GetParam());
  ByteReader r(w.bytes());
  uint64_t out = 0;
  ASSERT_TRUE(r.GetVarint(&out));
  EXPECT_EQ(out, GetParam());
  EXPECT_TRUE(r.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                      (1ull << 32) - 1, 1ull << 32, (1ull << 56) + 123,
                      std::numeric_limits<uint64_t>::max()));

TEST(VarintTest, MaxValueTakesTenBytes) {
  ByteWriter w;
  w.PutVarint(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(w.size(), 10u);
}

TEST(ByteReaderTest, TruncationDetected) {
  ByteWriter w;
  w.PutU32(42);
  ByteReader r(w.bytes());
  uint64_t out;
  EXPECT_FALSE(r.GetU64(&out));  // Only 4 bytes available.
}

TEST(ByteReaderTest, TruncatedVarintDetected) {
  std::vector<uint8_t> bad = {0x80, 0x80};  // Never-terminating varint.
  ByteReader r(bad);
  uint64_t out;
  EXPECT_FALSE(r.GetVarint(&out));
}

TEST(VarintTest, TenthByteOverflowRejected) {
  // Nine continuation bytes put the tenth byte at shift 63, where only one
  // payload bit remains. Any higher payload bit would silently shift off
  // the 64-bit end; the reader must reject instead of truncating.
  for (uint8_t last :
       {uint8_t{0x02}, uint8_t{0x40}, uint8_t{0x7e}, uint8_t{0x7f}}) {
    std::vector<uint8_t> bad(10, 0x80);
    bad[9] = last;
    ByteReader r(bad);
    uint64_t out = 0;
    EXPECT_FALSE(r.GetVarint(&out)) << "last=" << int{last};
  }
}

TEST(VarintTest, TenthByteLastRepresentableBitAccepted) {
  std::vector<uint8_t> max_enc(10, 0xff);
  max_enc[9] = 0x01;  // Canonical encoding of 2^64 - 1.
  ByteReader r(max_enc);
  uint64_t out = 0;
  ASSERT_TRUE(r.GetVarint(&out));
  EXPECT_EQ(out, std::numeric_limits<uint64_t>::max());
  EXPECT_TRUE(r.empty());
}

TEST(VarintTest, ElevenByteOverlongRejected) {
  // A continuation bit on the tenth byte claims an eleventh; no 64-bit
  // value needs one.
  std::vector<uint8_t> bad(11, 0x80);
  bad[10] = 0x00;
  ByteReader r(bad);
  uint64_t out = 0;
  EXPECT_FALSE(r.GetVarint(&out));
}

TEST(ByteReaderTest, EmptyReads) {
  ByteReader r(nullptr, 0);
  uint8_t out;
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.GetU8(&out));
}

TEST(ByteReaderTest, SkipAdvancesAndBoundsChecks) {
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  ByteReader r(data);
  ASSERT_TRUE(r.Skip(3));
  uint8_t out = 0;
  ASSERT_TRUE(r.GetU8(&out));
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(r.Skip(2));  // Only one byte left; position must not move.
  ASSERT_TRUE(r.Skip(1));
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Skip(0));
}

TEST(LengthPrefixedTest, RoundTrip) {
  ByteWriter w;
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  w.PutLengthPrefixed(payload);
  w.PutLengthPrefixed({});
  ByteReader r(w.bytes());
  std::vector<uint8_t> out;
  ASSERT_TRUE(r.GetLengthPrefixed(&out));
  EXPECT_EQ(out, payload);
  ASSERT_TRUE(r.GetLengthPrefixed(&out));
  EXPECT_TRUE(out.empty());
}

TEST(LengthPrefixedTest, LengthBeyondBufferRejected) {
  ByteWriter w;
  w.PutVarint(1000);  // Claims 1000 bytes, provides none.
  ByteReader r(w.bytes());
  std::vector<uint8_t> out;
  EXPECT_FALSE(r.GetLengthPrefixed(&out));
}

TEST(LengthPrefixedTest, LengthOneBeyondRemainingRejected) {
  ByteWriter w;
  w.PutVarint(5);  // Claims 5 bytes...
  w.PutU32(0);     // ...provides 4.
  ByteReader r(w.bytes());
  std::vector<uint8_t> out;
  EXPECT_FALSE(r.GetLengthPrefixed(&out));
}

TEST(LengthPrefixedTest, HugeLengthDoesNotReserve) {
  // A hostile length just below 2^64 must be rejected by the remaining()
  // bound before any allocation is attempted.
  ByteWriter w;
  w.PutVarint(std::numeric_limits<uint64_t>::max() - 1);
  ByteReader r(w.bytes());
  std::vector<uint8_t> out;
  EXPECT_FALSE(r.GetLengthPrefixed(&out));
}

TEST(U64VectorTest, RoundTrip) {
  std::vector<uint64_t> values = {0, 1, 1ull << 40, 77, 127, 128};
  ByteWriter w;
  w.PutU64Vector(values);
  ByteReader r(w.bytes());
  std::vector<uint64_t> out;
  ASSERT_TRUE(r.GetU64Vector(&out));
  EXPECT_EQ(out, values);
}

TEST(U64VectorTest, HugeClaimedCountRejected) {
  ByteWriter w;
  w.PutVarint(uint64_t{1} << 40);
  ByteReader r(w.bytes());
  std::vector<uint64_t> out;
  EXPECT_FALSE(r.GetU64Vector(&out));
}

TEST(ByteWriterTest, TakeMovesBuffer) {
  ByteWriter w;
  w.PutU32(5);
  std::vector<uint8_t> taken = w.Take();
  EXPECT_EQ(taken.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace setrec
