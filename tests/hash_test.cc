#include "hashing/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace setrec {
namespace {

TEST(Mod61Test, SmallValues) {
  EXPECT_EQ(Mod61(0), 0u);
  EXPECT_EQ(Mod61(1), 1u);
  EXPECT_EQ(Mod61(kMersenne61 - 1), kMersenne61 - 1);
  EXPECT_EQ(Mod61(kMersenne61), 0u);
  EXPECT_EQ(Mod61(kMersenne61 + 5), 5u);
}

TEST(Mod61Test, LargeProducts) {
  // (p-1)^2 mod p == 1.
  __uint128_t sq =
      static_cast<__uint128_t>(kMersenne61 - 1) * (kMersenne61 - 1);
  EXPECT_EQ(Mod61(sq), 1u);
}

TEST(PairwiseHashTest, DeterministicPerSeed) {
  PairwiseHash h1(3), h2(3), h3(4);
  EXPECT_EQ(h1.Hash(100), h2.Hash(100));
  EXPECT_NE(h1.a(), h3.a());
}

TEST(PairwiseHashTest, OutputsInField) {
  PairwiseHash h(9);
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_LT(h.Hash(x), kMersenne61);
  }
}

TEST(PairwiseHashTest, HashRangeBounded) {
  PairwiseHash h(10);
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_LT(h.HashRange(x, 17), 17u);
  }
}

TEST(PairwiseHashTest, LinearStructure) {
  // h(x) = (a x + b) mod p exactly.
  PairwiseHash h(11);
  for (uint64_t x : {0ull, 1ull, 123456789ull}) {
    __uint128_t expect = static_cast<__uint128_t>(h.a()) * (x % kMersenne61);
    uint64_t r = Mod61(expect) + h.b();
    if (r >= kMersenne61) r -= kMersenne61;
    EXPECT_EQ(h.Hash(x), r);
  }
}

TEST(HashFamilyTest, SeedAndTagSelectFamily) {
  HashFamily a(1, 2), b(1, 2), c(1, 3), d(2, 2);
  EXPECT_EQ(a.HashU64(42), b.HashU64(42));
  EXPECT_NE(a.HashU64(42), c.HashU64(42));
  EXPECT_NE(a.HashU64(42), d.HashU64(42));
}

TEST(HashFamilyTest, IndexedHashesDiffer) {
  HashFamily f(5, 6);
  EXPECT_NE(f.HashU64Indexed(42, 0), f.HashU64Indexed(42, 1));
  EXPECT_NE(f.HashU64Indexed(42, 1), f.HashU64Indexed(42, 2));
}

TEST(HashFamilyTest, BytesHashMatchesLengths) {
  HashFamily f(7, 8);
  std::vector<uint8_t> a = {1, 2, 3};
  std::vector<uint8_t> b = {1, 2, 3, 0};  // Same prefix, longer.
  EXPECT_NE(f.HashBytes(a), f.HashBytes(b));
  EXPECT_EQ(f.HashBytes(a), f.HashBytes(a));
}

TEST(HashFamilyTest, BytesHashAvalancheOnSample) {
  HashFamily f(9, 10);
  std::set<uint64_t> outputs;
  std::vector<uint8_t> data(16, 0);
  for (size_t i = 0; i < 128; ++i) {
    data[i / 8] = static_cast<uint8_t>(1u << (i % 8));
    outputs.insert(f.HashBytes(data));
    data[i / 8] = 0;
  }
  EXPECT_EQ(outputs.size(), 128u);
}

TEST(SetFingerprintTest, OrderInvariant) {
  HashFamily f(11, 12);
  std::vector<uint64_t> a = {5, 9, 1};
  std::vector<uint64_t> b = {1, 5, 9};
  EXPECT_EQ(SetFingerprint(a, f), SetFingerprint(b, f));
}

TEST(SetFingerprintTest, MultiplicitySensitive) {
  HashFamily f(13, 14);
  std::vector<uint64_t> once = {5, 9};
  std::vector<uint64_t> twice = {5, 5, 9};
  EXPECT_NE(SetFingerprint(once, f), SetFingerprint(twice, f));
}

TEST(SetFingerprintTest, EmptyVsSingleton) {
  HashFamily f(15, 16);
  EXPECT_NE(SetFingerprint({}, f), SetFingerprint({0}, f));
}

TEST(SetFingerprintTest, SensitiveToElementChange) {
  HashFamily f(17, 18);
  std::vector<uint64_t> a = {1, 2, 3};
  std::vector<uint64_t> b = {1, 2, 4};
  EXPECT_NE(SetFingerprint(a, f), SetFingerprint(b, f));
}

TEST(SetFingerprintTest, XorCancellationResistance) {
  // Sum-based fingerprints must distinguish {a,b} from {c,d} even when
  // a ^ b == c ^ d (the classic XOR-fingerprint weakness).
  HashFamily f(19, 20);
  std::vector<uint64_t> ab = {0x3, 0x5};  // xor = 6
  std::vector<uint64_t> cd = {0x2, 0x4};  // xor = 6
  EXPECT_NE(SetFingerprint(ab, f), SetFingerprint(cd, f));
}

}  // namespace
}  // namespace setrec
