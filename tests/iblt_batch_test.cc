// Equivalence tests for the batched insert paths and the reusable decode
// scratch: every batched/scratch combination must produce tables and decode
// results identical to per-key Insert + a fresh scratch-free decode.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hashing/random.h"
#include "iblt/iblt.h"
#include "util/serialization.h"

namespace setrec {
namespace {

std::vector<uint8_t> SerializedBytes(const Iblt& table) {
  ByteWriter writer;
  table.SerializeFixed(&writer);
  return writer.bytes();
}

std::vector<std::vector<uint8_t>> Sorted(std::vector<std::vector<uint8_t>> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<uint64_t> Sorted64(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Builds a deterministic packed key block (n keys of `width` bytes).
std::vector<uint8_t> RandomPackedKeys(size_t n, size_t width, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> packed(n * width);
  for (auto& b : packed) b = static_cast<uint8_t>(rng.NextU64());
  return packed;
}

TEST(IbltBatchTest, ByteBatchMatchesPerKeyInsertAcrossWidthsAndSizes) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    for (size_t width : {8ul, 36ul}) {  // 64-bit keys and a blob-ish width.
      for (size_t d : {0ul, 1ul, 10ul, 1000ul}) {
        IbltConfig config = IbltConfig::ForDifference(d, seed, width);
        std::vector<uint8_t> packed = RandomPackedKeys(d, width, seed * 7 + d);

        Iblt per_key(config);
        for (size_t j = 0; j < d; ++j) {
          per_key.Insert(packed.data() + j * width);
        }
        Iblt batched(config);
        batched.InsertBatch(packed.data(), d);
        EXPECT_EQ(SerializedBytes(per_key), SerializedBytes(batched))
            << "seed=" << seed << " width=" << width << " d=" << d;

        // Batched erase must cancel the batched insert exactly.
        batched.EraseBatch(packed.data(), d);
        EXPECT_TRUE(batched.IsZero());
      }
    }
  }
}

TEST(IbltBatchTest, U64BatchMatchesPerKeyInsert) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    for (size_t d : {0ul, 1ul, 10ul, 1000ul}) {
      IbltConfig config = IbltConfig::ForDifference(d, seed);
      Rng rng(seed * 11 + d);
      std::vector<uint64_t> keys(d);
      for (auto& k : keys) k = rng.NextU64();

      Iblt per_key(config);
      for (uint64_t k : keys) per_key.InsertU64(k);
      Iblt batched(config);
      batched.InsertBatch(keys);
      EXPECT_EQ(SerializedBytes(per_key), SerializedBytes(batched));
    }
  }
}

TEST(IbltBatchTest, ScratchDecodeMatchesFreshDecode) {
  DecodeScratch scratch;  // Deliberately reused across every iteration.
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    for (size_t width : {8ul, 36ul}) {
      for (size_t d : {0ul, 1ul, 10ul, 1000ul}) {
        IbltConfig config = IbltConfig::ForDifference(d, seed, width);
        std::vector<uint8_t> pos = RandomPackedKeys(d, width, seed * 3 + d);
        std::vector<uint8_t> neg =
            RandomPackedKeys(d / 2, width, seed * 5 + d);

        Iblt table(config);
        table.InsertBatch(pos.data(), d);
        table.EraseBatch(neg.data(), d / 2);

        IbltPartialDecode fresh = table.DecodePartial();
        IbltPartialDecodeView reused = table.DecodePartial(&scratch);
        EXPECT_EQ(fresh.complete, reused.complete);
        IbltDecodeResult materialized = reused.entries.Materialize();
        EXPECT_EQ(Sorted(fresh.entries.positive),
                  Sorted(materialized.positive));
        EXPECT_EQ(Sorted(fresh.entries.negative),
                  Sorted(materialized.negative));
      }
    }
  }
}

TEST(IbltBatchTest, ScratchDecodeU64MatchesByteDecode) {
  DecodeScratch scratch;
  for (uint64_t seed : {1ull, 2ull}) {
    for (size_t d : {1ul, 10ul, 1000ul}) {
      IbltConfig config = IbltConfig::ForDifference(d, seed);
      Rng rng(seed * 13 + d);
      std::vector<uint64_t> keys(d);
      for (auto& k : keys) k = rng.NextU64();
      Iblt table(config);
      table.InsertBatch(keys);

      Result<IbltDecodeResult64> fresh = table.DecodeU64();
      Result<IbltDecodeResult64> reused = table.DecodeU64(&scratch);
      ASSERT_TRUE(fresh.ok());
      ASSERT_TRUE(reused.ok());
      EXPECT_EQ(Sorted64(fresh.value().positive),
                Sorted64(reused.value().positive));
      EXPECT_EQ(Sorted64(fresh.value().positive), Sorted64(keys));
      EXPECT_TRUE(reused.value().negative.empty());
    }
  }
}

TEST(IbltBatchTest, ScratchAdaptsAcrossConfigs) {
  // One scratch serving tables of very different sizes and key widths, in
  // both orders (grow then shrink) — the cascading protocol's usage shape.
  DecodeScratch scratch;
  for (size_t d : {1000ul, 4ul, 300ul, 1ul}) {
    for (size_t width : {8ul, 20ul}) {
      IbltConfig config = IbltConfig::ForDifference(d, d + width, width);
      std::vector<uint8_t> packed = RandomPackedKeys(d, width, d * 31 + width);
      Iblt table(config);
      table.InsertBatch(packed.data(), d);
      IbltPartialDecodeView out = table.DecodePartial(&scratch);
      EXPECT_TRUE(out.complete);
      EXPECT_EQ(out.entries.positive.size(), d);
    }
  }
}

TEST(IbltBatchTest, ShardedBatchMatchesSerialBatch) {
  // Force the std::thread-sharded path (the batch is above
  // kShardedBatchMinKeys) and pin the worker count so the test exercises
  // real sharding even on single-core machines.
  const size_t n = Iblt::kShardedBatchMinKeys + 1000;
  IbltConfig config = IbltConfig::ForDifference(n / 8, 77);
  Rng rng(99);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.NextU64();

  Iblt serial(config);
  for (uint64_t k : keys) serial.InsertU64(k);

  Iblt::sharded_workers_for_test = 4;
  Iblt sharded(config);
  sharded.InsertBatch(keys);
  Iblt::sharded_workers_for_test = 0;

  EXPECT_EQ(SerializedBytes(serial), SerializedBytes(sharded));
}

TEST(IbltBatchTest, SubtractAndAddRejectMismatchedConfigs) {
  IbltConfig base;
  base.cells = 32;
  base.num_hashes = 4;
  base.key_width = 8;
  base.seed = 5;
  Iblt table(base);

  IbltConfig wrong_cells = base;
  wrong_cells.cells = 64;
  IbltConfig wrong_hashes = base;
  wrong_hashes.num_hashes = 3;
  IbltConfig wrong_width = base;
  wrong_width.key_width = 16;
  IbltConfig wrong_seed = base;
  wrong_seed.seed = 6;
  for (const IbltConfig& config :
       {wrong_cells, wrong_hashes, wrong_width, wrong_seed}) {
    Iblt other(config);
    EXPECT_FALSE(table.Subtract(other).ok());
    EXPECT_FALSE(table.Add(other).ok());
  }
  Iblt same(base);
  EXPECT_TRUE(table.Subtract(same).ok());
  EXPECT_TRUE(table.Add(same).ok());
}

}  // namespace
}  // namespace setrec
