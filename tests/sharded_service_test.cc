// Shard-count invariance and cross-shard races for ShardedSyncService.
//
// The load-bearing property (inherited from PR 3/4 and now asserted across
// shard counts): a session's transcript is a function of (spec, seeds)
// only. Cached Alice messages are byte-identical to built ones, parsed-
// table memos are copies of identical parses, and shards share nothing
// else — so the same workload run at shards ∈ {1, 2, 4} must produce
// bit-identical per-session transcripts (witnessed by transcript hashes),
// statuses, and recoveries, all equal to the plain single-threaded
// SyncService ground truth.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "hashing/random.h"
#include "service/sharded_service.h"
#include "service/sync_service.h"
#include "transport/endpoint.h"

namespace setrec {
namespace {

struct SessionInput {
  SessionSpec spec;
  SetOfSets expected_alice;
};

/// A mixed workload: every fourth session reconciles against one shared
/// (registered) server set under shared coins — the cross-shard
/// memoization + build-lease path — and the rest carry independent random
/// workloads over all four protocols × SSRK/SSRU.
std::vector<SessionInput> MakeMixedWorkload(
    int sessions, const std::shared_ptr<const SetOfSets>& server_set,
    uint64_t seed) {
  Rng rng(seed);
  std::vector<SessionInput> inputs;
  inputs.reserve(static_cast<size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    SessionInput input;
    input.spec.label = "inv" + std::to_string(i);
    input.spec.protocol = static_cast<SsrProtocolKind>(rng.NextU64() % 4);
    if (i % 4 == 0) {
      SetOfSets bob = *server_set;
      size_t victim = rng.NextU64() % bob.size();
      if (bob[victim].size() > 1) bob[victim].pop_back();
      bob[rng.NextU64() % bob.size()].push_back((1ull << 41) +
                                                (rng.NextU64() & 0xffff));
      bob = Canonicalize(std::move(bob));
      input.spec.params.max_child_size = 14;
      input.spec.params.max_children = 22;
      input.spec.params.seed = 9000;  // Shared coins: enables memoization.
      input.spec.alice = server_set;
      input.spec.bob = std::make_shared<SetOfSets>(std::move(bob));
      input.spec.known_d = 6;
      input.expected_alice = *server_set;
    } else {
      SsrWorkloadSpec spec;
      spec.num_children = 6 + rng.NextU64() % 10;
      spec.child_size = 4 + rng.NextU64() % 6;
      spec.changes = 1 + rng.NextU64() % 3;
      spec.seed = 40'000 + static_cast<uint64_t>(i);
      SsrWorkload w = MakeSsrWorkload(spec);
      input.spec.params.max_child_size = spec.child_size + spec.changes + 2;
      input.spec.params.max_children = spec.num_children + spec.changes;
      input.spec.params.seed = 50'000 + static_cast<uint64_t>(i);
      input.spec.known_d = (i % 2 == 0)
                               ? std::optional<size_t>(w.applied_changes)
                               : std::nullopt;
      input.spec.alice = std::make_shared<SetOfSets>(w.alice);
      input.spec.bob = std::make_shared<SetOfSets>(w.bob);
      input.expected_alice = w.alice;
    }
    inputs.push_back(std::move(input));
  }
  return inputs;
}

struct Observed {
  Status status;
  uint64_t transcript_hash = 0;
  SetOfSets recovered;
};

std::map<std::string, Observed> RunSharded(
    const std::vector<SessionInput>& inputs,
    const std::shared_ptr<const SetOfSets>& server_set, size_t shards) {
  ShardedSyncServiceOptions options;
  options.shards = shards;
  options.service.hash_transcripts = true;
  ShardedSyncService service(options);
  service.RegisterSharedSet(server_set);
  for (const SessionInput& input : inputs) {
    service.Submit(input.spec);  // Copy; the spec is reused across runs.
  }
  service.RunToCompletion();
  std::map<std::string, Observed> by_label;
  for (SessionResult& result : service.TakeResults()) {
    Observed observed;
    observed.status = result.status;
    observed.transcript_hash = result.transcript_hash;
    observed.recovered = std::move(result.recovered);
    by_label.emplace(result.label, std::move(observed));
  }
  const ServiceStats stats = service.AggregateStats();
  EXPECT_EQ(stats.sessions_submitted, inputs.size());
  EXPECT_EQ(stats.sessions_completed + stats.sessions_failed, inputs.size());
  return by_label;
}

TEST(ShardedServiceTest, ShardCountInvariance) {
  constexpr int kSessions = 240;
  SsrWorkloadSpec shared_spec;
  shared_spec.num_children = 16;
  shared_spec.child_size = 8;
  shared_spec.changes = 3;
  shared_spec.seed = 777;
  auto server_set =
      std::make_shared<SetOfSets>(MakeSsrWorkload(shared_spec).alice);
  std::vector<SessionInput> inputs =
      MakeMixedWorkload(kSessions, server_set, 20260730);

  // Ground truth: the plain single-threaded SyncService.
  SyncServiceOptions base;
  base.hash_transcripts = true;
  SyncService reference(base);
  reference.RegisterSharedSet(server_set);
  for (const SessionInput& input : inputs) reference.Submit(input.spec);
  reference.RunToCompletion();
  std::map<std::string, Observed> truth;
  for (SessionResult& result : reference.TakeResults()) {
    truth.emplace(result.label,
                  Observed{result.status, result.transcript_hash,
                           std::move(result.recovered)});
  }
  ASSERT_EQ(truth.size(), static_cast<size_t>(kSessions));
  for (const SessionInput& input : inputs) {
    const Observed& want = truth.at(input.spec.label);
    ASSERT_TRUE(want.status.ok())
        << input.spec.label << ": " << want.status.ToString();
    EXPECT_EQ(want.recovered, Canonicalize(input.expected_alice));
  }

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    std::map<std::string, Observed> got =
        RunSharded(inputs, server_set, shards);
    ASSERT_EQ(got.size(), truth.size()) << "shards=" << shards;
    for (const auto& [label, want] : truth) {
      auto it = got.find(label);
      ASSERT_NE(it, got.end()) << label << " missing at shards=" << shards;
      EXPECT_EQ(it->second.status.code(), want.status.code())
          << label << " at shards=" << shards;
      EXPECT_EQ(it->second.transcript_hash, want.transcript_hash)
          << label << " transcript diverged at shards=" << shards;
      EXPECT_EQ(it->second.recovered, want.recovered)
          << label << " recovery diverged at shards=" << shards;
    }
  }
}

TEST(ShardedServiceTest, SharedCacheSpansShards) {
  // Many sessions against one registered set under one seed, spread over 4
  // shards: the Alice message is built once SOMEWHERE (per attempt key)
  // and every other session replays it — hits must dwarf misses, and the
  // anti-stampede lease must wake waiters across shards without deadlock.
  constexpr int kSessions = 96;
  SsrWorkloadSpec spec;
  spec.num_children = 20;
  spec.child_size = 8;
  spec.changes = 2;
  spec.seed = 313;
  auto server_set = std::make_shared<SetOfSets>(MakeSsrWorkload(spec).alice);

  ShardedSyncServiceOptions options;
  options.shards = 4;
  ShardedSyncService service(options);
  service.RegisterSharedSet(server_set);
  Rng rng(99);
  for (int i = 0; i < kSessions; ++i) {
    SetOfSets bob = *server_set;
    bob[rng.NextU64() % bob.size()].push_back((uint64_t{1} << 40) + static_cast<uint64_t>(i));
    SessionSpec session;
    session.label = "cache" + std::to_string(i);
    session.protocol = SsrProtocolKind::kIblt2;
    session.params.max_child_size = 12;
    session.params.max_children = 26;
    session.params.seed = 4242;
    session.alice = server_set;
    session.bob = std::make_shared<SetOfSets>(Canonicalize(std::move(bob)));
    session.known_d = 4;
    service.Submit(std::move(session));
  }
  service.RunToCompletion();
  std::vector<SessionResult> results = service.TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kSessions));
  for (const SessionResult& result : results) {
    EXPECT_TRUE(result.status.ok())
        << result.label << ": " << result.status.ToString();
  }
  const ServiceStats stats = service.AggregateStats();
  EXPECT_GT(stats.cache_hits, stats.cache_misses);
  EXPECT_GT(stats.cache_hits, static_cast<size_t>(kSessions / 2));
}

TEST(ShardedServiceTest, CrossShardDisconnectAndCancelRaces) {
  // Half sessions whose "peers" disconnect at random points, raced from
  // the submitting thread against the shard drivers, with healthy kBoth
  // sessions interleaved. Every session must produce exactly one result:
  // cancelled halves a cancellation status, healthy sessions success.
  constexpr int kHalves = 60;
  constexpr int kHealthy = 40;
  SsrWorkloadSpec spec;
  spec.num_children = 12;
  spec.child_size = 6;
  spec.changes = 2;
  spec.seed = 555;
  auto server_set = std::make_shared<SetOfSets>(MakeSsrWorkload(spec).alice);

  ShardedSyncServiceOptions options;
  options.shards = 4;
  ShardedSyncService service(options);
  service.RegisterSharedSet(server_set);

  // The mirror peers are polled from THIS thread while shard threads send:
  // cross-shard mirrors must be MailboxPair endpoints.
  std::vector<std::shared_ptr<Endpoint>> peers;
  std::vector<uint64_t> half_ids;
  for (int i = 0; i < kHalves; ++i) {
    auto [server_end, client_end] = Endpoint::MailboxPair();
    SessionSpec session;
    session.label = "half" + std::to_string(i);
    session.role = SessionRole::kAliceHalf;
    session.protocol = SsrProtocolKind::kNaive;
    session.params.max_child_size = 10;
    session.params.max_children = 16;
    session.params.seed = 808;
    session.alice = server_set;
    session.known_d = 4;  // Alice opens; her message lands on the mirror.
    session.mirror = std::make_shared<Endpoint>(std::move(server_end));
    peers.push_back(std::make_shared<Endpoint>(std::move(client_end)));
    half_ids.push_back(service.Submit(std::move(session)));
  }
  Rng rng(321);
  for (int i = 0; i < kHealthy; ++i) {
    SsrWorkloadSpec w_spec;
    w_spec.num_children = 8;
    w_spec.child_size = 5;
    w_spec.changes = 2;
    w_spec.seed = static_cast<uint64_t>(900 + i);
    SsrWorkload w = MakeSsrWorkload(w_spec);
    SessionSpec session;
    session.label = "healthy" + std::to_string(i);
    session.protocol = static_cast<SsrProtocolKind>(rng.NextU64() % 4);
    session.params.max_child_size = w_spec.child_size + 4;
    session.params.max_children = w_spec.num_children + 2;
    session.params.seed = static_cast<uint64_t>(1000 + i);
    session.alice = std::make_shared<SetOfSets>(w.alice);
    session.bob = std::make_shared<SetOfSets>(w.bob);
    session.known_d = w.applied_changes;
    service.Submit(std::move(session));
  }

  // Race the disconnects against the shard drivers mid-flight.
  for (int i = 0; i < kHalves; ++i) {
    if (i % 3 == 0) std::this_thread::yield();
    service.CancelSession(half_ids[static_cast<size_t>(i)],
                          Unavailable("peer disconnected (test)"));
  }
  service.RunToCompletion();

  std::vector<SessionResult> results = service.TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kHalves + kHealthy));
  size_t healthy_ok = 0;
  size_t halves_failed = 0;
  for (const SessionResult& result : results) {
    if (result.label.rfind("healthy", 0) == 0) {
      EXPECT_TRUE(result.status.ok())
          << result.label << ": " << result.status.ToString();
      ++healthy_ok;
    } else {
      // A cancelled half must fail (it can never complete without a peer).
      EXPECT_FALSE(result.status.ok()) << result.label;
      ++halves_failed;
    }
  }
  EXPECT_EQ(healthy_ok, static_cast<size_t>(kHealthy));
  EXPECT_EQ(halves_failed, static_cast<size_t>(kHalves));
  const ServiceStats stats = service.AggregateStats();
  EXPECT_EQ(stats.sessions_cancelled, static_cast<size_t>(kHalves));
}

// AggregateStats builds its sum into a fresh zeroed struct each call, so
// re-aggregating an unchanged service must be a no-op — a regression guard
// against accumulating into a cached member. Equality is checked through
// the exposition text, which covers every field (including ones added
// later) without needing an operator==. Also pins the quiescence contract:
// after RunToCompletion the published snapshots (SnapshotStats /
// SnapshotMetrics) have caught up with the live aggregate, and the merged
// session-latency histograms saw every finalized session.
TEST(ShardedServiceTest, RepeatedAggregationIsIdempotent) {
  constexpr int kSessions = 48;
  SsrWorkloadSpec shared_spec;
  shared_spec.num_children = 12;
  shared_spec.child_size = 6;
  shared_spec.seed = 777;
  auto server_set = std::make_shared<const SetOfSets>(
      MakeSsrWorkload(shared_spec).alice);
  const std::vector<SessionInput> inputs =
      MakeMixedWorkload(kSessions, server_set, /*seed=*/31337);

  ShardedSyncServiceOptions options;
  options.shards = 2;
  ShardedSyncService service(options);
  service.RegisterSharedSet(server_set);
  for (const SessionInput& input : inputs) service.Submit(input.spec);
  // Hammer the published snapshots from a foreign thread while the shard
  // threads run — the cross-thread read path TSan must see racing the
  // single-writer live counters.
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)service.SnapshotMetrics();
      (void)service.SnapshotStats();
    }
  });
  service.RunToCompletion();
  stop.store(true, std::memory_order_release);
  poller.join();
  (void)service.TakeResults();

  const ServiceStats first = service.AggregateStats();
  const ServiceStats second = service.AggregateStats();
  obs::ExpositionWriter text1, text2;
  AppendServiceExposition(service.SnapshotMetrics(), first, &text1);
  AppendServiceExposition(service.SnapshotMetrics(), second, &text2);
  EXPECT_EQ(text1.text(), text2.text());
  EXPECT_EQ(first.sessions_submitted, static_cast<size_t>(kSessions));
  EXPECT_EQ(first.sessions_completed + first.sessions_failed,
            static_cast<size_t>(kSessions));

  const ServiceStats published = service.SnapshotStats();
  EXPECT_EQ(published.sessions_submitted, first.sessions_submitted);
  EXPECT_EQ(published.sessions_completed, first.sessions_completed);
  EXPECT_EQ(published.sessions_failed, first.sessions_failed);
  EXPECT_EQ(published.total_rounds, first.total_rounds);
  EXPECT_EQ(published.total_bytes, first.total_bytes);
  EXPECT_EQ(published.flushes, first.flushes);

  const obs::MetricRegistry metrics = service.SnapshotMetrics();
  uint64_t latency_count = metrics.opaque_session_latency.count();
  for (size_t k = 0; k < obs::kProtocolKinds; ++k) {
    for (size_t c = 0; c < obs::kWireCodecs; ++c) {
      latency_count += metrics.session_latency[k][c].count();
    }
  }
  EXPECT_EQ(latency_count, first.sessions_completed + first.sessions_failed);
}

}  // namespace
}  // namespace setrec
