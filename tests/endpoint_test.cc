// Tests for the duplex Endpoint transport and the framed stream codec:
// loopback ordering, stream round-trips (including byte-at-a-time feeding),
// wire compatibility with PackTranscript, and malformed-frame latching.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "transport/channel.h"
#include "transport/endpoint.h"
#include "util/serialization.h"

namespace setrec {
namespace {

Channel::Message Msg(Party from, std::string label,
                     std::vector<uint8_t> payload) {
  return Channel::Message{from, std::move(payload), std::move(label)};
}

TEST(EndpointTest, LoopbackPairDeliversInOrderBothWays) {
  auto [server, client] = Endpoint::LoopbackPair();
  ASSERT_TRUE(server.connected());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(server.Send(Msg(Party::kAlice, "t1", {1, 2, 3})));
  ASSERT_TRUE(server.Send(Msg(Party::kAlice, "t2", {4})));
  ASSERT_TRUE(client.Send(Msg(Party::kBob, "ack", {9, 9})));

  EXPECT_EQ(client.pending(), 2u);
  EXPECT_EQ(server.pending(), 1u);
  EXPECT_EQ(server.messages_sent(), 2u);
  EXPECT_EQ(server.bytes_sent(), 4u);

  Channel::Message m;
  ASSERT_TRUE(client.Poll(&m));
  EXPECT_EQ(m.label, "t1");
  EXPECT_EQ(m.payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(m.from, Party::kAlice);
  ASSERT_TRUE(client.Poll(&m));
  EXPECT_EQ(m.label, "t2");
  EXPECT_FALSE(client.Poll(&m));

  ASSERT_TRUE(server.Poll(&m));
  EXPECT_EQ(m.label, "ack");
  EXPECT_EQ(m.from, Party::kBob);
}

TEST(EndpointTest, DrainToStreamRoundTripsThroughFrameDecoder) {
  auto [server, client] = Endpoint::LoopbackPair();
  std::vector<Channel::Message> sent;
  for (int i = 0; i < 5; ++i) {
    Channel::Message m = Msg(i % 2 == 0 ? Party::kAlice : Party::kBob,
                             "label" + std::to_string(i),
                             std::vector<uint8_t>(static_cast<size_t>(i * 7),
                                                  static_cast<uint8_t>(i)));
    sent.push_back(m);
    ASSERT_TRUE(server.Send(std::move(m)));
  }

  ByteWriter stream;
  EXPECT_EQ(client.DrainToStream(&stream), 5u);
  EXPECT_EQ(client.pending(), 0u);

  // Feed the stream one byte at a time: frames must pop exactly when
  // complete and match what was sent, in order.
  FrameDecoder decoder;
  std::vector<Channel::Message> received;
  for (uint8_t byte : stream.bytes()) {
    decoder.Feed(&byte, 1);
    Channel::Message m;
    while (decoder.Next(&m)) received.push_back(std::move(m));
  }
  ASSERT_FALSE(decoder.failed());
  EXPECT_EQ(decoder.buffered(), 0u);
  ASSERT_EQ(received.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(received[i].from, sent[i].from);
    EXPECT_EQ(received[i].label, sent[i].label);
    EXPECT_EQ(received[i].payload, sent[i].payload);
  }
}

TEST(EndpointTest, FrameStreamIsPackTranscriptCompatible) {
  // A packed transcript is a varint count followed by the same frames the
  // endpoint stream uses; after skipping the count, FrameDecoder must parse
  // the body, and a frame stream must parse with ReadMessageFrame.
  Channel channel;
  channel.Send(Party::kAlice, {10, 20, 30}, "outer");
  channel.Send(Party::kBob, {40}, "reply");
  std::vector<uint8_t> packed = PackTranscript(channel);

  ByteReader reader(packed);
  uint64_t count = 0;
  ASSERT_TRUE(reader.GetVarint(&count));
  ASSERT_EQ(count, 2u);

  FrameDecoder decoder;
  decoder.Feed(packed.data() + (packed.size() - reader.remaining()),
               reader.remaining());
  Channel::Message m;
  ASSERT_TRUE(decoder.Next(&m));
  EXPECT_EQ(m.label, "outer");
  EXPECT_EQ(m.from, Party::kAlice);
  ASSERT_TRUE(decoder.Next(&m));
  EXPECT_EQ(m.label, "reply");
  EXPECT_FALSE(decoder.Next(&m));
  EXPECT_FALSE(decoder.failed());

  // And the reverse: frames written by WriteMessageFrame parse with
  // ReadMessageFrame (the UnpackTranscript path exercises this too).
  ByteWriter frames;
  WriteMessageFrame(channel.transcript()[0], &frames);
  WriteMessageFrame(channel.transcript()[1], &frames);
  ByteReader frame_reader(frames.bytes());
  Channel::Message a, b;
  ASSERT_TRUE(ReadMessageFrame(&frame_reader, &a));
  ASSERT_TRUE(ReadMessageFrame(&frame_reader, &b));
  EXPECT_EQ(a.payload, (std::vector<uint8_t>{10, 20, 30}));
  EXPECT_EQ(b.payload, (std::vector<uint8_t>{40}));
  EXPECT_EQ(frame_reader.remaining(), 0u);
}

TEST(EndpointTest, MalformedFrameLatchesFailure) {
  FrameDecoder decoder;
  // Sender byte 7 is not a Party.
  std::vector<uint8_t> bad = {7, 0, 0};
  decoder.Feed(bad);
  Channel::Message m;
  EXPECT_FALSE(decoder.Next(&m));
  EXPECT_TRUE(decoder.failed());
  // Further feeding cannot resynchronize.
  std::vector<uint8_t> good;
  {
    ByteWriter w;
    WriteMessageFrame(Msg(Party::kAlice, "x", {1}), &w);
    good = w.Take();
  }
  decoder.Feed(good);
  EXPECT_FALSE(decoder.Next(&m));
  EXPECT_TRUE(decoder.failed());
}

TEST(EndpointTest, OversizeFrameLengthLatchesFailure) {
  // A hostile length prefix above the frame bound must fail fast, not park
  // the decoder in "need more" while the caller buffers forever.
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  ByteWriter w;
  w.PutU8(0);                // Valid sender.
  w.PutVarint(1ull << 20);   // Label "length" far above the bound.
  decoder.Feed(w.bytes());
  Channel::Message m;
  EXPECT_FALSE(decoder.Next(&m));
  EXPECT_TRUE(decoder.failed());
}

TEST(EndpointTest, IncompleteFrameWaitsForMoreBytes) {
  ByteWriter w;
  WriteMessageFrame(Msg(Party::kBob, "partial", std::vector<uint8_t>(300, 5)),
                    &w);
  const std::vector<uint8_t>& bytes = w.bytes();

  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size() / 2);
  Channel::Message m;
  EXPECT_FALSE(decoder.Next(&m));
  EXPECT_FALSE(decoder.failed());
  decoder.Feed(bytes.data() + bytes.size() / 2, bytes.size() - bytes.size() / 2);
  ASSERT_TRUE(decoder.Next(&m));
  EXPECT_EQ(m.label, "partial");
  EXPECT_EQ(m.payload.size(), 300u);
}

TEST(FrameDecoderAdversarial, TwoChunkSplitAtEverySplitPoint) {
  // A multi-frame stream split into two feeds at EVERY byte position must
  // decode to the identical message sequence — the exact situation a
  // socket read boundary produces (partial varints, half labels, split
  // payloads).
  ByteWriter w;
  std::vector<Channel::Message> sent;
  sent.push_back(Msg(Party::kAlice, "", {}));
  sent.push_back(Msg(Party::kBob, "ack", {1}));
  sent.push_back(
      Msg(Party::kAlice, std::string(130, 'L'),  // 2-byte label varint.
          std::vector<uint8_t>(200, 9)));
  for (const Channel::Message& m : sent) WriteMessageFrame(m, &w);
  const std::vector<uint8_t>& bytes = w.bytes();

  for (size_t split = 0; split <= bytes.size(); ++split) {
    FrameDecoder decoder;
    std::vector<Channel::Message> received;
    Channel::Message m;
    decoder.Feed(bytes.data(), split);
    while (decoder.Next(&m)) received.push_back(std::move(m));
    decoder.Feed(bytes.data() + split, bytes.size() - split);
    while (decoder.Next(&m)) received.push_back(std::move(m));
    ASSERT_FALSE(decoder.failed()) << "split at " << split;
    ASSERT_EQ(received.size(), sent.size()) << "split at " << split;
    for (size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(received[i].from, sent[i].from) << "split at " << split;
      EXPECT_EQ(received[i].label, sent[i].label) << "split at " << split;
      EXPECT_EQ(received[i].payload, sent[i].payload)
          << "split at " << split;
    }
  }
}

TEST(FrameDecoderAdversarial, TruncationAtEveryPrefixNeitherYieldsNorFails) {
  // Every proper prefix of a valid frame is "need more bytes": no message,
  // no failure latch — the stream can always be completed later.
  ByteWriter w;
  WriteMessageFrame(Msg(Party::kBob, "trunc", std::vector<uint8_t>(50, 3)),
                    &w);
  const std::vector<uint8_t>& bytes = w.bytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), len);
    Channel::Message m;
    EXPECT_FALSE(decoder.Next(&m)) << "prefix " << len;
    EXPECT_FALSE(decoder.failed()) << "prefix " << len;
    EXPECT_EQ(decoder.buffered(), len);
  }
}

TEST(FrameDecoderAdversarial, PayloadLengthAboveBoundLatches) {
  // The SECOND length prefix (payload) above the bound must latch too —
  // not just the label length.
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  ByteWriter w;
  w.PutU8(1);          // Valid sender.
  w.PutVarint(2);      // Label length 2.
  w.PutU8('h');
  w.PutU8('i');
  w.PutVarint(1ull << 30);  // Hostile payload length.
  decoder.Feed(w.bytes());
  Channel::Message m;
  EXPECT_FALSE(decoder.Next(&m));
  EXPECT_TRUE(decoder.failed());
}

TEST(FrameDecoderAdversarial, OverlongVarintLengthLatches) {
  // An 11-byte varint encoding (or payload bits past bit 63) can never be
  // a valid length; the decoder must latch instead of waiting forever.
  FrameDecoder decoder;
  std::vector<uint8_t> bad = {0};  // Valid sender byte.
  for (int i = 0; i < 10; ++i) bad.push_back(0x80);
  bad.push_back(0x01);
  decoder.Feed(bad);
  Channel::Message m;
  EXPECT_FALSE(decoder.Next(&m));
  EXPECT_TRUE(decoder.failed());
}

TEST(EndpointTest, MailboxPairCrossThread) {
  // The cross-shard mirror shape: one thread sends, another polls. Every
  // message must arrive exactly once, in order.
  auto [producer_end, consumer_end] = Endpoint::MailboxPair();
  constexpr int kMessages = 500;
  std::thread producer([&, sender = &producer_end] {
    for (int i = 0; i < kMessages; ++i) {
      ASSERT_TRUE(sender->Send(
          Msg(Party::kAlice, "m" + std::to_string(i),
              {static_cast<uint8_t>(i & 0xff)})));
    }
  });
  int received = 0;
  Channel::Message m;
  while (received < kMessages) {
    if (!consumer_end.Poll(&m)) {
      std::this_thread::yield();
      continue;
    }
    EXPECT_EQ(m.label, "m" + std::to_string(received));
    EXPECT_EQ(m.payload[0], static_cast<uint8_t>(received & 0xff));
    ++received;
  }
  producer.join();
  EXPECT_EQ(consumer_end.pending(), 0u);
  EXPECT_EQ(producer_end.messages_sent(), static_cast<size_t>(kMessages));
}

TEST(EndpointTest, UnconnectedSendReportsDrop) {
  Endpoint endpoint;
  EXPECT_FALSE(endpoint.connected());
  EXPECT_FALSE(endpoint.Send(Msg(Party::kAlice, "lost", {1, 2})));
  EXPECT_EQ(endpoint.dropped(), 1u);
  EXPECT_EQ(endpoint.messages_sent(), 0u);
  EXPECT_EQ(endpoint.bytes_sent(), 0u);

  auto [a, b] = Endpoint::LoopbackPair();
  EXPECT_TRUE(a.Send(Msg(Party::kAlice, "kept", {3})));
  EXPECT_EQ(a.dropped(), 0u);
}

}  // namespace
}  // namespace setrec
