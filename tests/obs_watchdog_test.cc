// Tests for the stall watchdog, driven deterministically through CheckOnce
// with synthetic clocks: never-started shards are skipped, idle-but-quiet
// shards never fire, a stale beat with queued work dumps the tracer ring
// exactly once per stall episode, and a fresh beat re-arms the dump.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "obs/watchdog.h"

namespace setrec::obs {
namespace {

constexpr uint64_t kMs = 1'000'000;

// Runs `fn(out)` against an in-memory FILE* and returns what it printed.
template <typename Fn>
std::string CaptureDump(Fn&& fn) {
  char* buf = nullptr;
  size_t len = 0;
  std::FILE* out = open_memstream(&buf, &len);
  EXPECT_NE(out, nullptr);
  fn(out);
  std::fclose(out);
  std::string text(buf, len);
  std::free(buf);
  return text;
}

TEST(StallWatchdogTest, NeverStartedShardIsSkipped) {
  Heartbeat hb;  // Beat 0: the driver has not run yet.
  StallWatchdog dog;
  dog.Watch({"shard-0", &hb, [] { return true; }, nullptr, {}});
  const std::string text = CaptureDump([&](std::FILE* out) {
    EXPECT_EQ(dog.CheckOnce(10'000 * kMs, 100 * kMs, out), 0u);
  });
  EXPECT_TRUE(text.empty());
  EXPECT_EQ(dog.stall_dumps(), 0u);
}

TEST(StallWatchdogTest, FreshBeatDoesNotFire) {
  Heartbeat hb;
  hb.Beat(1'000 * kMs);
  StallWatchdog dog;
  dog.Watch({"shard-0", &hb, [] { return true; }, nullptr, {}});
  const std::string text = CaptureDump([&](std::FILE* out) {
    EXPECT_EQ(dog.CheckOnce(1'050 * kMs, 100 * kMs, out), 0u);
  });
  EXPECT_TRUE(text.empty());
}

TEST(StallWatchdogTest, StaleBeatWithoutQueuedWorkIsIdleNotStalled) {
  Heartbeat hb;
  hb.Beat(1'000 * kMs);
  StallWatchdog dog;
  dog.Watch({"shard-0", &hb, [] { return false; }, nullptr, {}});
  const std::string text = CaptureDump([&](std::FILE* out) {
    EXPECT_EQ(dog.CheckOnce(9'999 * kMs, 100 * kMs, out), 0u);
  });
  EXPECT_TRUE(text.empty());
}

TEST(StallWatchdogTest, StallDumpsRingOncePerEpisode) {
  Heartbeat hb;
  hb.Beat(1'000 * kMs);
  SessionTracer tracer;
  tracer.Configure(32, 1);
  tracer.Record(7, TracePhase::kFlushWait, true, 999 * kMs, /*trace_id=*/0xe);
  StallWatchdog dog;
  bool queued = true;
  dog.Watch({"shard-3", &hb, [&queued] { return queued; }, &tracer, {}});

  const std::string first = CaptureDump([&](std::FILE* out) {
    EXPECT_EQ(dog.CheckOnce(2'000 * kMs, 100 * kMs, out), 1u);
  });
  EXPECT_NE(first.find("shard shard-3 stalled"), std::string::npos);
  EXPECT_NE(first.find("> flush-wait"), std::string::npos);
  EXPECT_NE(first.find("trace 000000000000000e"), std::string::npos);
  EXPECT_EQ(dog.stall_dumps(), 1u);

  // Still stalled at the same beat: one dump per episode, not per poll.
  const std::string second = CaptureDump([&](std::FILE* out) {
    EXPECT_EQ(dog.CheckOnce(3'000 * kMs, 100 * kMs, out), 0u);
  });
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(dog.stall_dumps(), 1u);

  // The driver recovers (fresh beat), then wedges again: a new episode.
  hb.Beat(3'500 * kMs);
  const std::string recovered = CaptureDump([&](std::FILE* out) {
    EXPECT_EQ(dog.CheckOnce(3'501 * kMs, 100 * kMs, out), 0u);
  });
  EXPECT_TRUE(recovered.empty());
  const std::string third = CaptureDump([&](std::FILE* out) {
    EXPECT_EQ(dog.CheckOnce(5'000 * kMs, 100 * kMs, out), 1u);
  });
  EXPECT_NE(third.find("stalled"), std::string::npos);
  EXPECT_EQ(dog.stall_dumps(), 2u);
}

TEST(StallWatchdogTest, EmptyRingSaysSo) {
  Heartbeat hb;
  hb.Beat(1'000 * kMs);
  SessionTracer tracer;  // Unconfigured: nothing to dump.
  StallWatchdog dog;
  dog.Watch({"shard-0", &hb, [] { return true; }, &tracer, {}});
  const std::string text = CaptureDump([&](std::FILE* out) {
    EXPECT_EQ(dog.CheckOnce(2'000 * kMs, 100 * kMs, out), 1u);
  });
  EXPECT_NE(text.find("(tracer ring empty)"), std::string::npos);
}

TEST(StallWatchdogTest, ChecksEveryShardIndependently) {
  Heartbeat stalled_hb;
  stalled_hb.Beat(1'000 * kMs);
  Heartbeat fresh_hb;
  fresh_hb.Beat(1'999 * kMs);
  StallWatchdog dog;
  dog.Watch({"stalled", &stalled_hb, [] { return true; }, nullptr, {}});
  dog.Watch({"fresh", &fresh_hb, [] { return true; }, nullptr, {}});
  const std::string text = CaptureDump([&](std::FILE* out) {
    EXPECT_EQ(dog.CheckOnce(2'000 * kMs, 100 * kMs, out), 1u);
  });
  EXPECT_NE(text.find("shard stalled stalled"), std::string::npos);
  EXPECT_EQ(text.find("shard fresh"), std::string::npos);
}

}  // namespace
}  // namespace setrec::obs
