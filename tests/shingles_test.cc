#include "apps/shingles.h"

#include <gtest/gtest.h>

#include "core/protocol.h"

namespace setrec {
namespace {

constexpr uint64_t kShingleSeed = 77;

std::vector<uint64_t> Doc(const std::string& text) {
  return ShingleSet(text, 3, kShingleSeed);
}

TEST(ShingleSetTest, DeterministicAndSorted) {
  auto a = Doc("one two three four five");
  auto b = Doc("one two three four five");
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_EQ(a.size(), 3u);  // 5 words, k=3 -> 3 windows.
}

TEST(ShingleSetTest, ShortDocumentsSingleShingle) {
  EXPECT_EQ(Doc("hi there").size(), 1u);
  EXPECT_TRUE(Doc("").empty());
}

TEST(ShingleSetTest, SmallEditSmallDifference) {
  auto a = Doc("the quick brown fox jumps over the lazy dog");
  auto b = Doc("the quick brown fox leaps over the lazy dog");
  // One word change affects at most k=3 windows.
  size_t common = 0;
  for (uint64_t s : a) {
    common += std::binary_search(b.begin(), b.end(), s);
  }
  EXPECT_GE(common, a.size() - 3);
  EXPECT_LT(common, a.size());
}

TEST(ShingleSetTest, ElementsInUserSpace) {
  for (uint64_t s : Doc("alpha beta gamma delta epsilon zeta")) {
    EXPECT_LT(s, 1ull << 56);
  }
}

class CollectionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* texts[] = {
        "the quick brown fox jumps over the lazy dog again and again today",
        "pack my box with five dozen liquor jugs for the long trip home",
        "sphinx of black quartz judge my vow said the old wise man slowly",
        "how vexingly quick daft zebras jump over fences in the night air",
        "a stitch in time saves nine but two stitches save eighteen maybe",
    };
    for (const char* t : texts) {
      bob_.push_back(Doc(t));
    }
    alice_ = bob_;
    bob_ = Canonicalize(bob_);
    params_.seed = 61;
    params_.max_child_size = 64;
  }

  SetOfSets alice_;
  SetOfSets bob_;
  SsrParams params_;
};

TEST_F(CollectionFixture, IdenticalCollectionsAllExact) {
  Channel ch;
  Result<CollectionReconcileOutcome> out = ReconcileCollections(
      Canonicalize(alice_), bob_, /*per_doc_diff=*/8, params_, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().exact_duplicates, 5u);
  EXPECT_EQ(out.value().near_duplicates, 0u);
  EXPECT_EQ(out.value().fresh_documents, 0u);
}

TEST_F(CollectionFixture, NearDuplicateDetected) {
  alice_[0] = Doc(
      "the quick brown fox jumps over the lazy cat again and again today");
  SetOfSets alice = Canonicalize(alice_);
  Channel ch;
  Result<CollectionReconcileOutcome> out =
      ReconcileCollections(alice, bob_, 8, params_, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().collection, alice);
  EXPECT_EQ(out.value().near_duplicates, 1u);
  EXPECT_EQ(out.value().exact_duplicates, 4u);
}

TEST_F(CollectionFixture, FreshDocumentFallsBackToDirectTransfer) {
  alice_.push_back(
      Doc("completely new document with entirely different content words"));
  SetOfSets alice = Canonicalize(alice_);
  Channel ch;
  Result<CollectionReconcileOutcome> out =
      ReconcileCollections(alice, bob_, 4, params_, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().collection, alice);
  EXPECT_EQ(out.value().fresh_documents, 1u);
}

TEST_F(CollectionFixture, DeletedDocumentRemoved) {
  alice_.erase(alice_.begin() + 2);
  SetOfSets alice = Canonicalize(alice_);
  Channel ch;
  Result<CollectionReconcileOutcome> out =
      ReconcileCollections(alice, bob_, 8, params_, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().collection, alice);
  EXPECT_EQ(out.value().collection.size(), 4u);
}

TEST_F(CollectionFixture, MixedWorkload) {
  // One near-duplicate, one fresh, one deletion simultaneously. The fresh
  // document must be large enough that its child IBLT cannot decode against
  // any partner (small fresh documents legitimately decode and are then
  // "near" — the classification is by decodability, per Section 3.2).
  alice_[1] = Doc(
      "pack my box with five dozen liquor jugs for the short trip home");
  alice_.erase(alice_.begin() + 3);
  std::string fresh_text;
  for (int w = 0; w < 60; ++w) fresh_text += "fresh" + std::to_string(w) + " ";
  alice_.push_back(Doc(fresh_text));
  SetOfSets alice = Canonicalize(alice_);
  Channel ch;
  Result<CollectionReconcileOutcome> out =
      ReconcileCollections(alice, bob_, 8, params_, &ch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().collection, alice);
  EXPECT_EQ(out.value().fresh_documents, 1u);
  EXPECT_EQ(out.value().near_duplicates, 1u);
  EXPECT_EQ(out.value().exact_duplicates, 3u);
}

TEST_F(CollectionFixture, KindsParallelToCollection) {
  Channel ch;
  Result<CollectionReconcileOutcome> out =
      ReconcileCollections(Canonicalize(alice_), bob_, 8, params_, &ch);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().kinds.size(), out.value().collection.size());
}

}  // namespace
}  // namespace setrec
