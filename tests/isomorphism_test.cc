#include "graph/isomorphism.h"

#include <gtest/gtest.h>

#include "hashing/random.h"

namespace setrec {
namespace {

Graph Relabel(const Graph& g, const std::vector<uint32_t>& perm) {
  Graph out(g.num_vertices());
  for (const auto& [u, v] : g.Edges()) out.AddEdge(perm[u], perm[v]);
  return out;
}

TEST(CanonicalFormTest, InvariantUnderRelabeling) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = Graph::RandomGnp(7, 0.4, &rng);
    std::vector<uint32_t> perm = {3, 1, 6, 0, 5, 2, 4};
    Graph relabeled = Relabel(g, perm);
    Result<uint64_t> ca = CanonicalForm(g);
    Result<uint64_t> cb = CanonicalForm(relabeled);
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    EXPECT_EQ(ca.value(), cb.value());
  }
}

TEST(CanonicalFormTest, DistinguishesNonIsomorphic) {
  // Path P3 vs triangle: same vertex count, different edge count; and
  // star K1,3 vs path P4: same vertex and edge count.
  Graph star(4), path(4);
  star.AddEdge(0, 1);
  star.AddEdge(0, 2);
  star.AddEdge(0, 3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  EXPECT_NE(CanonicalForm(star).value(), CanonicalForm(path).value());
}

TEST(CanonicalFormTest, TooLargeRejected) {
  Graph g(kMaxExactCanonicalVertices + 1);
  EXPECT_FALSE(CanonicalForm(g).ok());
}

TEST(CanonicalFormTest, TrivialGraphs) {
  EXPECT_EQ(CanonicalForm(Graph(0)).value(), 0u);
  EXPECT_EQ(CanonicalForm(Graph(1)).value(), 0u);
  Graph two(2);
  EXPECT_EQ(CanonicalForm(two).value(), 0u);
  two.AddEdge(0, 1);
  EXPECT_EQ(CanonicalForm(two).value(), 1u);
}

TEST(IsIsomorphicTest, SelfIsomorphism) {
  Rng rng(2);
  Graph g = Graph::RandomGnp(6, 0.5, &rng);
  EXPECT_TRUE(IsIsomorphic(g, g).value());
}

TEST(IsIsomorphicTest, DifferentSizesNotIsomorphic) {
  EXPECT_FALSE(IsIsomorphic(Graph(3), Graph(4)).value());
}

TEST(IsIsomorphicTest, EdgeCountShortcut) {
  Graph a(4), b(4);
  a.AddEdge(0, 1);
  EXPECT_FALSE(IsIsomorphic(a, b).value());
}

TEST(AdjacencyBitsTest, BitPerSlot) {
  Graph g(3);
  g.AddEdge(0, 1);  // Slot 0.
  EXPECT_EQ(AdjacencyBits(g), 1u);
  g.AddEdge(1, 2);  // Slot 2 for n=3: (0,1)=0, (0,2)=1, (1,2)=2.
  EXPECT_EQ(AdjacencyBits(g), 0b101u);
}

TEST(Figure1Test, AmbiguousTwoWayMerge) {
  // Figure 1 of the paper: two one-edge completions of the same pair of
  // graphs can be non-isomorphic, so two-way "union" reconciliation is
  // ill-defined. We reconstruct the phenomenon: take two 5-vertex graphs
  // one edge short of each other and exhibit two different one-edge-each
  // completions with non-isomorphic results.
  Rng rng(7);
  int found_ambiguous = 0;
  for (int trial = 0; trial < 40 && !found_ambiguous; ++trial) {
    Graph a = Graph::RandomGnp(5, 0.5, &rng);
    Graph b = a;
    b.Perturb(2, &rng);
    // Collect all one-edge additions to each and compare cross products.
    std::vector<uint64_t> ca, cb;
    for (uint32_t u = 0; u < 5; ++u) {
      for (uint32_t v = u + 1; v < 5; ++v) {
        if (!a.HasEdge(u, v)) {
          Graph g2 = a;
          g2.AddEdge(u, v);
          ca.push_back(CanonicalForm(g2).value());
        }
        if (!b.HasEdge(u, v)) {
          Graph g2 = b;
          g2.AddEdge(u, v);
          cb.push_back(CanonicalForm(g2).value());
        }
      }
    }
    // Ambiguity: at least two distinct canonical forms appear in both
    // completion sets.
    int matches = 0;
    for (uint64_t x : ca) {
      for (uint64_t y : cb) {
        if (x == y) {
          ++matches;
          break;
        }
      }
    }
    if (matches >= 2) ++found_ambiguous;
  }
  EXPECT_GT(found_ambiguous, 0);
}

}  // namespace
}  // namespace setrec
