// Wire-codec negotiation over the hello frame, and mixed-version peers
// end-to-end: a v1 (pre-codec) hello is the dense negotiation, a v2 hello
// carries an explicit codec byte, a v3 hello additionally propagates a
// trace id (invisible to the protocol bytes), and a sparse-negotiated
// session over a real socket must produce the exact transcript of the
// direct sparse Reconcile call while spending fewer wire bytes than its
// dense twin.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "net/net_pump.h"
#include "net/stream_party.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "service/sync_service.h"

namespace setrec {
namespace {

HelloSpec MakeSpec(WireCodec codec) {
  HelloSpec spec;
  spec.protocol = SsrProtocolKind::kCascade;
  spec.set_id = 42;
  spec.params.max_child_size = 12;
  spec.params.max_children = 20;
  spec.params.seed = 777;
  spec.params.wire_codec = codec;
  spec.known_d = 5;
  return spec;
}

TEST(HelloCodecTest, V2RoundTripsBothCodecs) {
  for (WireCodec codec : {WireCodec::kDense, WireCodec::kSparse}) {
    Channel::Message m = MakeHelloMessage(MakeSpec(codec));
    ASSERT_GE(m.payload.size(), 2u);
    EXPECT_EQ(m.payload[0], 2) << "hello frames are emitted as version 2";
    Result<HelloSpec> parsed = ParseHelloMessage(m);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed.value().params.wire_codec, codec);
    EXPECT_EQ(parsed.value().params, MakeSpec(codec).params);
    EXPECT_EQ(parsed.value().set_id, 42u);
  }
}

// A v1 hello is the v2 frame minus the trailing codec byte, version 1.
Channel::Message MakeLegacyHello(const HelloSpec& spec) {
  Channel::Message m = MakeHelloMessage(spec);
  m.payload[0] = 1;
  m.payload.pop_back();
  return m;
}

TEST(HelloCodecTest, LegacyV1MeansDense) {
  Channel::Message m = MakeLegacyHello(MakeSpec(WireCodec::kSparse));
  Result<HelloSpec> parsed = ParseHelloMessage(m);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // The codec byte never made it to the wire: a v1 peer is a dense peer,
  // whatever the local spec said.
  EXPECT_EQ(parsed.value().params.wire_codec, WireCodec::kDense);
}

TEST(HelloCodecTest, MalformedCodecNegotiationRejected) {
  // Unknown codec value.
  Channel::Message bad_codec = MakeHelloMessage(MakeSpec(WireCodec::kDense));
  bad_codec.payload.back() = 2;
  EXPECT_FALSE(ParseHelloMessage(bad_codec).ok());

  // v1 frame with a trailing codec byte: trailing garbage, not negotiation.
  Channel::Message v1_extra = MakeHelloMessage(MakeSpec(WireCodec::kDense));
  v1_extra.payload[0] = 1;
  EXPECT_FALSE(ParseHelloMessage(v1_extra).ok());

  // v2 frame without its codec byte: truncated.
  Channel::Message v2_short = MakeHelloMessage(MakeSpec(WireCodec::kDense));
  v2_short.payload.pop_back();
  EXPECT_FALSE(ParseHelloMessage(v2_short).ok());
}

HelloSpec MakeTracedSpec(uint64_t trace_id) {
  HelloSpec spec = MakeSpec(WireCodec::kSparse);
  spec.trace_id = trace_id;
  return spec;
}

TEST(HelloCodecTest, V3CarriesTraceId) {
  Channel::Message traced = MakeHelloMessage(MakeTracedSpec(0xdeadbeef));
  EXPECT_EQ(traced.payload[0], 3) << "a nonzero trace id makes a v3 hello";
  Result<HelloSpec> parsed = ParseHelloMessage(traced);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().trace_id, 0xdeadbeefu);
  EXPECT_EQ(parsed.value().params.wire_codec, WireCodec::kSparse);
  EXPECT_EQ(parsed.value().params, MakeTracedSpec(0xdeadbeef).params);
}

TEST(HelloCodecTest, UntracedHelloIsByteIdenticalToV2) {
  // The acceptance contract: tracing costs untraced peers zero wire bytes.
  Channel::Message untraced = MakeHelloMessage(MakeTracedSpec(0));
  Channel::Message v2 = MakeHelloMessage(MakeSpec(WireCodec::kSparse));
  EXPECT_EQ(untraced.payload, v2.payload);
  EXPECT_EQ(untraced.payload[0], 2);
  // And the traced frame is exactly the v2 frame plus the 8-byte id.
  Channel::Message traced = MakeHelloMessage(MakeTracedSpec(1));
  EXPECT_EQ(traced.payload.size(), v2.payload.size() + 8);
}

TEST(HelloCodecTest, AdversarialTracedHellosRejected) {
  // v3 frame truncated inside its trace id.
  Channel::Message truncated = MakeHelloMessage(MakeTracedSpec(0xdeadbeef));
  truncated.payload.pop_back();
  EXPECT_FALSE(ParseHelloMessage(truncated).ok());

  // A v2 frame whose version byte claims v3: missing the trace id.
  Channel::Message missing_id = MakeHelloMessage(MakeSpec(WireCodec::kDense));
  missing_id.payload[0] = 3;
  EXPECT_FALSE(ParseHelloMessage(missing_id).ok());

  // v3 with a zero trace id: fails closed, not silently untraced.
  Channel::Message zero_id = MakeHelloMessage(MakeTracedSpec(0xdeadbeef));
  for (size_t i = zero_id.payload.size() - 8; i < zero_id.payload.size();
       ++i) {
    zero_id.payload[i] = 0;
  }
  EXPECT_FALSE(ParseHelloMessage(zero_id).ok());

  // v3 with trailing garbage after the trace id.
  Channel::Message v3_extra = MakeHelloMessage(MakeTracedSpec(0xdeadbeef));
  v3_extra.payload.push_back(0x7);
  EXPECT_FALSE(ParseHelloMessage(v3_extra).ok());

  // Versions beyond v3 are unsupported outright.
  Channel::Message v4 = MakeHelloMessage(MakeTracedSpec(0xdeadbeef));
  v4.payload[0] = 4;
  EXPECT_FALSE(ParseHelloMessage(v4).ok());
}

struct Fixture {
  SsrParams params;
  SetOfSets alice;
  SetOfSets bob;
  std::optional<size_t> known_d;
};

Fixture MakeFixture(SsrProtocolKind kind, WireCodec codec) {
  SsrWorkloadSpec spec;
  spec.num_children = 16;
  spec.child_size = 8;
  spec.changes = 3;
  spec.seed = 8800 + static_cast<uint64_t>(kind) * 13;
  SsrWorkload w = MakeSsrWorkload(spec);
  Fixture f;
  f.params.max_child_size = spec.child_size + spec.changes + 2;
  f.params.max_children = spec.num_children + spec.changes;
  f.params.seed = spec.seed + 9;
  f.params.wire_codec = codec;
  f.alice = std::move(w.alice);
  f.bob = std::move(w.bob);
  f.known_d = w.applied_changes;
  return f;
}

struct ClientResult {
  Result<SsrOutcome> outcome = Status::Ok();
  std::vector<Channel::Message> transcript;
};

// The sync_client flow, with the hello frame swappable so a test can speak
// v1 (legacy dense) or v3 (traced) against the server.
ClientResult RunClient(int fd, SsrProtocolKind kind, uint64_t set_id,
                       const Fixture& f, bool legacy_hello,
                       uint64_t trace_id = 0) {
  ClientResult result;
  HelloSpec hello;
  hello.protocol = kind;
  hello.set_id = set_id;
  hello.params = f.params;
  hello.known_d = f.known_d;
  hello.trace_id = trace_id;
  Channel::Message frame =
      legacy_hello ? MakeLegacyHello(hello) : MakeHelloMessage(hello);
  if (Status s = WriteFrameToFd(fd, frame); !s.ok()) {
    result.outcome = s;
    return result;
  }
  std::unique_ptr<SetsOfSetsProtocol> protocol =
      MakeSsrProtocol(kind, f.params);
  Channel channel;
  result.outcome =
      RunBobHalfOverFd(*protocol, f.bob, f.known_d, fd, &channel);
  result.transcript = channel.transcript();
  return result;
}

// One socketpair session against a NetPump-fronted service; returns the
// client's view plus the server-side session byte count.
struct SessionRun {
  ClientResult client;
  size_t server_bytes = 0;
  std::vector<obs::CompletedTrace> server_traces;
};

SessionRun RunSession(SsrProtocolKind kind, const Fixture& f,
                      bool legacy_hello, uint64_t trace_id = 0) {
  SessionRun run;
  SyncService service;
  uint64_t set_id =
      service.RegisterSharedSet(std::make_shared<SetOfSets>(f.alice));
  NetPump pump(&service);
  int sv[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  EXPECT_TRUE(pump.AdoptConnection(sv[0]).ok());
  std::thread client_thread([&] {
    run.client = RunClient(sv[1], kind, set_id, f, legacy_hello, trace_id);
    ::close(sv[1]);
  });
  pump.DrainConnections();
  client_thread.join();
  std::vector<SessionResult> results = pump.TakeResults();
  EXPECT_EQ(results.size(), 1u);
  EXPECT_EQ(pump.stats().protocol_errors, 0u);
  if (!results.empty()) {
    EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
    run.server_bytes = results[0].stats.bytes;
  }
  run.server_traces = service.tracer().SnapshotCompleted();
  return run;
}

void ExpectSameTranscript(const std::vector<Channel::Message>& want,
                          const std::vector<Channel::Message>& got,
                          const char* what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].label, got[i].label) << what << " message " << i;
    EXPECT_EQ(want[i].payload, got[i].payload) << what << " message " << i;
  }
}

class NetCodecInterop : public ::testing::TestWithParam<SsrProtocolKind> {};

TEST_P(NetCodecInterop, SparseSessionMatchesDirectAndBeatsDense) {
  const SsrProtocolKind kind = GetParam();

  // Direct halves under both codecs (the reference transcripts).
  const Fixture dense_f = MakeFixture(kind, WireCodec::kDense);
  const Fixture sparse_f = MakeFixture(kind, WireCodec::kSparse);
  Channel dense_direct, sparse_direct;
  Result<SsrOutcome> dense_ref =
      MakeSsrProtocol(kind, dense_f.params)
          ->Reconcile(dense_f.alice, dense_f.bob, dense_f.known_d,
                      &dense_direct);
  Result<SsrOutcome> sparse_ref =
      MakeSsrProtocol(kind, sparse_f.params)
          ->Reconcile(sparse_f.alice, sparse_f.bob, sparse_f.known_d,
                      &sparse_direct);
  ASSERT_TRUE(dense_ref.ok()) << dense_ref.status().ToString();
  ASSERT_TRUE(sparse_ref.ok()) << sparse_ref.status().ToString();
  // Same protocol, same seeds: both codecs must recover the same set.
  EXPECT_EQ(sparse_ref.value().recovered, dense_ref.value().recovered);
  EXPECT_LE(sparse_ref.value().stats.bytes, dense_ref.value().stats.bytes);

  // A sparse-negotiated socket session replays the direct sparse bytes.
  SessionRun sparse_run = RunSession(kind, sparse_f, /*legacy_hello=*/false);
  ASSERT_TRUE(sparse_run.client.outcome.ok())
      << sparse_run.client.outcome.status().ToString();
  EXPECT_EQ(sparse_run.client.outcome.value().recovered,
            Canonicalize(sparse_f.alice));
  ExpectSameTranscript(sparse_direct.transcript(),
                       sparse_run.client.transcript, "sparse session");
  EXPECT_EQ(sparse_run.server_bytes, sparse_ref.value().stats.bytes);

  // A v1 (pre-codec) client against the same server negotiates dense and
  // replays the direct dense bytes — mixed-version interop.
  SessionRun legacy_run = RunSession(kind, dense_f, /*legacy_hello=*/true);
  ASSERT_TRUE(legacy_run.client.outcome.ok())
      << legacy_run.client.outcome.status().ToString();
  EXPECT_EQ(legacy_run.client.outcome.value().recovered,
            Canonicalize(dense_f.alice));
  ExpectSameTranscript(dense_direct.transcript(),
                       legacy_run.client.transcript, "legacy session");
  EXPECT_EQ(legacy_run.server_bytes, dense_ref.value().stats.bytes);
}

TEST(TracedHelloInterop, V3SessionMatchesUntracedAndTagsServerTrace) {
  const SsrProtocolKind kind = SsrProtocolKind::kCascade;
  const Fixture f = MakeFixture(kind, WireCodec::kSparse);

  SessionRun untraced = RunSession(kind, f, /*legacy_hello=*/false);
  SessionRun traced =
      RunSession(kind, f, /*legacy_hello=*/false, /*trace_id=*/0xfeedface);
  ASSERT_TRUE(untraced.client.outcome.ok())
      << untraced.client.outcome.status().ToString();
  ASSERT_TRUE(traced.client.outcome.ok())
      << traced.client.outcome.status().ToString();

  // Tracing is invisible to the protocol: byte-identical transcripts and
  // byte counts whether or not the hello carried a trace id.
  ExpectSameTranscript(untraced.client.transcript, traced.client.transcript,
                       "traced vs untraced");
  EXPECT_EQ(untraced.server_bytes, traced.server_bytes);

  // The server tagged its half of the traced session and retained it for
  // TRACE?; the untraced session left nothing behind.
  EXPECT_TRUE(untraced.server_traces.empty());
  ASSERT_EQ(traced.server_traces.size(), 1u);
  const obs::CompletedTrace& trace = traced.server_traces[0];
  EXPECT_EQ(trace.trace_id, 0xfeedfaceu);
  EXPECT_FALSE(trace.slow);
  ASSERT_FALSE(trace.events.empty());
  // The session span frames the server half; phases carry the same id.
  EXPECT_EQ(trace.events.front().phase, obs::TracePhase::kSession);
  EXPECT_TRUE(trace.events.front().enter);
  EXPECT_EQ(trace.events.back().phase, obs::TracePhase::kSession);
  EXPECT_FALSE(trace.events.back().enter);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, NetCodecInterop,
                         ::testing::Values(SsrProtocolKind::kNaive,
                                           SsrProtocolKind::kIblt2,
                                           SsrProtocolKind::kCascade,
                                           SsrProtocolKind::kMultiRound),
                         [](const ::testing::TestParamInfo<SsrProtocolKind>&
                                param_info) {
                           return std::string(
                               SsrProtocolKindName(param_info.param));
                         });

}  // namespace
}  // namespace setrec
