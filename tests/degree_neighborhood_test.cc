#include "graph/degree_neighborhood.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace setrec {
namespace {

std::vector<size_t> SortedDegrees(const Graph& g) {
  std::vector<size_t> degrees;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    degrees.push_back(g.Degree(v));
  }
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

TEST(DegreeNeighborhoodTest, SignatureContents) {
  // Star: center sees three degree-1 leaves; leaves see the degree-3
  // center (included only when m >= 3).
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(DegreeNeighborhood(g, 0, 5),
            (std::vector<uint64_t>{1, 1, 1}));
  EXPECT_EQ(DegreeNeighborhood(g, 1, 5), (std::vector<uint64_t>{3}));
  EXPECT_TRUE(DegreeNeighborhood(g, 1, 2).empty());  // Threshold excludes.
}

TEST(AreNeighborhoodsDisjointTest, FailsOnSymmetricGraph) {
  // In a 4-cycle every vertex has the same neighborhood multiset {2, 2}.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  EXPECT_FALSE(AreNeighborhoodsDisjoint(g, 4, 1));
}

TEST(AreNeighborhoodsDisjointTest, HoldsOnDenseRandomGraph) {
  // Theorem 5.5's regime, scaled to a laptop: G(800, 0.25) with m = pn and
  // k = 4d+1 for d = 1.
  Rng rng(44);
  Graph g = Graph::RandomGnp(800, 0.25, &rng);
  EXPECT_TRUE(AreNeighborhoodsDisjoint(g, 200, 5));
}

TEST(DegreeNeighborhoodReconcileTest, DisjointInstanceReconciles) {
  Rng rng(44);
  const size_t n = 800;
  const double p = 0.25;
  const size_t d = 1;
  Graph base = Graph::RandomGnp(n, p, &rng);
  const uint64_t m = static_cast<uint64_t>(p * n);
  ASSERT_TRUE(AreNeighborhoodsDisjoint(base, m, 4 * d + 1));

  Graph alice = base, bob = base;
  alice.Perturb(1, &rng);
  Channel ch;
  Result<GraphReconcileOutcome> rec =
      DegreeNeighborhoodReconcile(alice, bob, d, m, 55, &ch);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec.value().recovered.num_edges(), alice.num_edges());
  EXPECT_EQ(SortedDegrees(rec.value().recovered), SortedDegrees(alice));
  EXPECT_EQ(ch.rounds(), 1u);  // Theorem 5.6: one round.
}

TEST(DegreeNeighborhoodReconcileTest, BothSidesPerturbed) {
  Rng rng(46);
  const size_t n = 700;
  const double p = 0.25;
  const size_t d = 2;
  Graph base = Graph::RandomGnp(n, p, &rng);
  const uint64_t m = static_cast<uint64_t>(p * n);
  if (!AreNeighborhoodsDisjoint(base, m, 4 * d + 1)) {
    GTEST_SKIP() << "sampled base graph not (pn, 4d+1)-disjoint";
  }
  Graph alice = base, bob = base;
  alice.Perturb(1, &rng);
  bob.Perturb(1, &rng);
  Channel ch;
  Result<GraphReconcileOutcome> rec =
      DegreeNeighborhoodReconcile(alice, bob, d, m, 57, &ch);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(SortedDegrees(rec.value().recovered), SortedDegrees(alice));
}

TEST(DegreeNeighborhoodReconcileTest, IdenticalGraphs) {
  Rng rng(47);
  Graph base = Graph::RandomGnp(300, 0.2, &rng);
  Channel ch;
  Result<GraphReconcileOutcome> rec =
      DegreeNeighborhoodReconcile(base, base, 1, 60, 58, &ch);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec.value().recovered.num_edges(), base.num_edges());
}

TEST(DegreeNeighborhoodReconcileTest, MismatchedSizesRejected) {
  Channel ch;
  EXPECT_FALSE(
      DegreeNeighborhoodReconcile(Graph(5), Graph(6), 1, 2, 1, &ch).ok());
}

}  // namespace
}  // namespace setrec
