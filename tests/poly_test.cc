#include "charpoly/poly.h"

#include <gtest/gtest.h>

#include "charpoly/gf.h"
#include "hashing/random.h"

namespace setrec {
namespace {

Poly RandomPoly(Rng* rng, int degree) {
  std::vector<uint64_t> coeffs(static_cast<size_t>(degree + 1));
  for (auto& c : coeffs) c = rng->NextU64() % gf::kP;
  if (coeffs.back() == 0) coeffs.back() = 1;
  return Poly(std::move(coeffs));
}

TEST(PolyTest, ZeroAndConstant) {
  Poly zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.Degree(), -1);
  Poly c = Poly::Constant(5);
  EXPECT_EQ(c.Degree(), 0);
  EXPECT_EQ(c.Eval(12345), 5u);
  EXPECT_TRUE(Poly::Constant(0).IsZero());
}

TEST(PolyTest, TrailingZerosTrimmed) {
  Poly p({1, 2, 0, 0});
  EXPECT_EQ(p.Degree(), 1);
}

TEST(PolyTest, EvalHorner) {
  // p(x) = 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38.
  Poly p({3, 2, 1});
  EXPECT_EQ(p.Eval(5), 38u);
}

TEST(PolyTest, FromRootsVanishesAtRoots) {
  std::vector<uint64_t> roots = {2, 7, 100, 999};
  Poly p = Poly::FromRoots(roots);
  EXPECT_EQ(p.Degree(), 4);
  EXPECT_EQ(p.LeadingCoeff(), 1u);  // Monic.
  for (uint64_t r : roots) EXPECT_EQ(p.Eval(r), 0u);
  EXPECT_NE(p.Eval(5), 0u);
}

TEST(PolyTest, AddSubInverse) {
  Rng rng(1);
  Poly a = RandomPoly(&rng, 7);
  Poly b = RandomPoly(&rng, 4);
  EXPECT_EQ(a.Add(b).Sub(b), a);
  EXPECT_TRUE(a.Sub(a).IsZero());
}

TEST(PolyTest, MulDegreeAndEval) {
  Rng rng(2);
  Poly a = RandomPoly(&rng, 5);
  Poly b = RandomPoly(&rng, 3);
  Poly ab = a.Mul(b);
  EXPECT_EQ(ab.Degree(), 8);
  for (uint64_t x : {0ull, 1ull, 77777ull}) {
    EXPECT_EQ(ab.Eval(x), gf::Mul(a.Eval(x), b.Eval(x)));
  }
}

TEST(PolyTest, MulByZero) {
  Poly a({1, 2, 3});
  EXPECT_TRUE(a.Mul(Poly()).IsZero());
}

TEST(PolyTest, DivModIdentity) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Poly a = RandomPoly(&rng, 9);
    Poly b = RandomPoly(&rng, 1 + trial % 5);
    Poly q, r;
    a.DivMod(b, &q, &r);
    EXPECT_LT(r.Degree(), b.Degree());
    EXPECT_EQ(q.Mul(b).Add(r), a);
  }
}

TEST(PolyTest, ModOfSmallerIsIdentity) {
  Poly a({5, 1});          // degree 1
  Poly b({1, 2, 3, 4});    // degree 3
  EXPECT_EQ(a.Mod(b), a);
}

TEST(PolyTest, MonicScalesLeading) {
  Poly p({2, 4, 6});
  Poly m = p.Monic();
  EXPECT_EQ(m.LeadingCoeff(), 1u);
  // Monic preserves roots: p and m vanish together.
  EXPECT_EQ(gf::Mul(m.Eval(9), 6), p.Eval(9));
}

TEST(PolyTest, Derivative) {
  // d/dx (3 + 2x + 5x^2) = 2 + 10x.
  Poly p({3, 2, 5});
  EXPECT_EQ(p.Derivative(), Poly({2, 10}));
  EXPECT_TRUE(Poly::Constant(9).Derivative().IsZero());
}

TEST(PolyGcdTest, CommonFactorRecovered) {
  Poly g = Poly::FromRoots({11, 22});
  Poly a = g.Mul(Poly::FromRoots({33}));
  Poly b = g.Mul(Poly::FromRoots({44, 55}));
  EXPECT_EQ(PolyGcd(a, b), g);
}

TEST(PolyGcdTest, CoprimeGivesOne) {
  Poly a = Poly::FromRoots({1, 2});
  Poly b = Poly::FromRoots({3, 4});
  EXPECT_EQ(PolyGcd(a, b), Poly::Constant(1));
}

TEST(PolyGcdTest, GcdWithZero) {
  Poly a = Poly::FromRoots({5});
  EXPECT_EQ(PolyGcd(a, Poly()), a.Monic());
}

TEST(PolyPowModTest, MatchesRepeatedMultiplication) {
  Poly x = Poly::X();
  Poly m = Poly::FromRoots({1, 2, 3});
  Poly direct = Poly::Constant(1);
  for (int e = 0; e <= 10; ++e) {
    EXPECT_EQ(PolyPowMod(x, static_cast<uint64_t>(e), m), direct.Mod(m))
        << "e=" << e;
    direct = direct.Mul(x);
  }
}

TEST(PolyPowModTest, FermatForLinearModulus) {
  // x^p ≡ x (mod any squarefree product of linears); check against x - 5.
  Poly m = Poly::FromRoots({5});
  Poly xp = PolyPowMod(Poly::X(), gf::kP, m);
  // Modulo (x - 5), x ≡ 5.
  EXPECT_EQ(xp, Poly::Constant(5));
}

TEST(EvalCharPolyTest, MatchesFromRoots) {
  std::vector<uint64_t> elements = {10, 20, 30, 40};
  Poly p = Poly::FromRoots(elements);
  for (uint64_t z : {0ull, 1ull, 10ull, 12345678ull}) {
    EXPECT_EQ(EvalCharPoly(elements, z), p.Eval(z));
  }
}

TEST(EvalCharPolyTest, EmptySetIsOne) {
  EXPECT_EQ(EvalCharPoly({}, 12345), 1u);
}

}  // namespace
}  // namespace setrec
