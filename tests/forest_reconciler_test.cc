#include "forest/forest_reconciler.h"

#include <gtest/gtest.h>

#include "forest/ahu.h"

namespace setrec {
namespace {

HashFamily SigFamily(uint64_t seed) {
  return HashFamily(seed, /*tag=*/0x61687530ull);
}

TEST(RebuildForestTest, SingleChain) {
  // Signatures A -> B -> C, one vertex each.
  std::map<uint64_t, size_t> vertices = {{1, 1}, {2, 1}, {3, 1}};
  std::map<std::pair<uint64_t, uint64_t>, size_t> edges = {{{1, 2}, 1},
                                                           {{2, 3}, 1}};
  Result<RootedForest> f = RebuildForest(vertices, edges);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f.value().num_vertices(), 3u);
  EXPECT_EQ(f.value().Roots().size(), 1u);
  EXPECT_EQ(f.value().MaxDepth(), 3u);
}

TEST(RebuildForestTest, DuplicateSubtreesGrouped) {
  // Two parents of signature P, each with 2 children of signature C:
  // edge (P, C) multiplicity 4 over parent count 2.
  std::map<uint64_t, size_t> vertices = {{10, 2}, {20, 4}};
  std::map<std::pair<uint64_t, uint64_t>, size_t> edges = {{{10, 20}, 4}};
  Result<RootedForest> f = RebuildForest(vertices, edges);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().num_vertices(), 6u);
  EXPECT_EQ(f.value().Roots().size(), 2u);
  for (uint32_t r : f.value().Roots()) {
    EXPECT_EQ(f.value().Children(r).size(), 2u);
  }
}

TEST(RebuildForestTest, NonDivisibleMultiplicityRejected) {
  std::map<uint64_t, size_t> vertices = {{10, 2}, {20, 3}};
  std::map<std::pair<uint64_t, uint64_t>, size_t> edges = {{{10, 20}, 3}};
  EXPECT_FALSE(RebuildForest(vertices, edges).ok());
}

TEST(RebuildForestTest, OverconsumedChildRejected) {
  std::map<uint64_t, size_t> vertices = {{10, 1}, {20, 1}};
  std::map<std::pair<uint64_t, uint64_t>, size_t> edges = {{{10, 20}, 2}};
  EXPECT_FALSE(RebuildForest(vertices, edges).ok());
}

TEST(RebuildForestTest, UnknownParentRejected) {
  std::map<uint64_t, size_t> vertices = {{20, 1}};
  std::map<std::pair<uint64_t, uint64_t>, size_t> edges = {{{10, 20}, 1}};
  EXPECT_FALSE(RebuildForest(vertices, edges).ok());
}

TEST(RebuildForestTest, EmptyForest) {
  Result<RootedForest> f = RebuildForest({}, {});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().num_vertices(), 0u);
}

TEST(RebuildForestTest, RoundTripFromRealForest) {
  // Compute a real forest's signature multisets and rebuild: must be
  // isomorphic.
  Rng rng(5);
  RootedForest f = RootedForest::Random(300, 5, 0.15, &rng);
  HashFamily family = SigFamily(99);
  std::vector<uint64_t> sigs = AhuSignatures(f, family);
  std::map<uint64_t, size_t> vertices;
  std::map<std::pair<uint64_t, uint64_t>, size_t> edges;
  for (uint32_t v = 0; v < f.num_vertices(); ++v) {
    vertices[sigs[v]] += 1;
    for (uint32_t c : f.Children(v)) edges[{sigs[v], sigs[c]}] += 1;
  }
  Result<RootedForest> rebuilt = RebuildForest(vertices, edges);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(AreForestsIsomorphic(f, rebuilt.value(), family));
}

struct ForestCase {
  size_t n;
  size_t max_depth;
  size_t d;
  uint64_t seed;
};

class ForestReconcileSweep : public ::testing::TestWithParam<ForestCase> {};

TEST_P(ForestReconcileSweep, RecoversIsomorphicForest) {
  const ForestCase c = GetParam();
  Rng rng(c.seed);
  RootedForest base =
      RootedForest::Random(c.n, c.max_depth, 0.15, &rng);
  RootedForest alice = base, bob = base;
  size_t applied = alice.Perturb(c.d - c.d / 2, c.max_depth, &rng) +
                   bob.Perturb(c.d / 2, c.max_depth, &rng);
  size_t sigma = std::max(alice.MaxDepth(), bob.MaxDepth());

  Channel ch;
  Result<ForestReconcileOutcome> rec =
      ForestReconcile(alice, bob, std::max<size_t>(applied, 1), sigma,
                      c.seed + 11, &ch);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(AreForestsIsomorphic(rec.value().recovered, alice,
                                   SigFamily(c.seed + 11)));
  EXPECT_EQ(ch.rounds(), 1u);  // Theorem 6.1: one round.
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ForestReconcileSweep,
    ::testing::Values(ForestCase{100, 4, 1, 1}, ForestCase{300, 5, 2, 2},
                      ForestCase{500, 6, 4, 3}, ForestCase{500, 3, 4, 4},
                      ForestCase{800, 8, 2, 5}, ForestCase{200, 12, 3, 6}));

TEST(ForestReconcileTest, IdenticalForests) {
  Rng rng(21);
  RootedForest base = RootedForest::Random(200, 5, 0.2, &rng);
  Channel ch;
  Result<ForestReconcileOutcome> rec =
      ForestReconcile(base, base, 1, base.MaxDepth(), 31, &ch);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(
      AreForestsIsomorphic(rec.value().recovered, base, SigFamily(31)));
}

TEST(ForestReconcileTest, CommunicationScalesWithDSigmaNotN) {
  // Theorem 6.1: O(d sigma log(d sigma) log n) bits.
  auto run = [](size_t n, uint64_t seed) -> size_t {
    Rng rng(seed);
    RootedForest base = RootedForest::Random(n, 4, 0.15, &rng);
    RootedForest alice = base;
    alice.Perturb(2, 4, &rng);
    Channel ch;
    Result<ForestReconcileOutcome> rec =
        ForestReconcile(alice, base, 2, 4, seed + 1, &ch);
    EXPECT_TRUE(rec.ok()) << rec.status().ToString();
    return ch.total_bytes();
  };
  size_t small = run(300, 41);
  size_t large = run(3000, 42);
  EXPECT_LT(large, 3 * small);  // 10x the forest, <3x the bytes.
}

}  // namespace
}  // namespace setrec
