#include "forest/ahu.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace setrec {
namespace {

HashFamily Family() { return HashFamily(123, 456); }

TEST(AhuTest, LeavesShareSignature) {
  RootedForest f(3);
  std::vector<uint64_t> sigs = AhuSignatures(f, Family());
  EXPECT_EQ(sigs[0], sigs[1]);
  EXPECT_EQ(sigs[1], sigs[2]);
}

TEST(AhuTest, SignatureWidthBounded) {
  RootedForest f(10);
  for (uint32_t v = 1; v < 10; ++v) ASSERT_TRUE(f.Attach(v, v - 1).ok());
  for (uint64_t sig : AhuSignatures(f, Family())) {
    EXPECT_LT(sig, 1ull << kAhuSignatureBits);
  }
}

TEST(AhuTest, ChildOrderIrrelevant) {
  // Root with children (leaf, path2) in either attach order.
  RootedForest a(4), b(4);
  ASSERT_TRUE(a.Attach(1, 0).ok());   // Leaf child first.
  ASSERT_TRUE(a.Attach(2, 0).ok());
  ASSERT_TRUE(a.Attach(3, 2).ok());   // Path under 2.
  ASSERT_TRUE(b.Attach(2, 0).ok());   // Path child first.
  ASSERT_TRUE(b.Attach(3, 2).ok());
  ASSERT_TRUE(b.Attach(1, 0).ok());
  EXPECT_EQ(AhuSignatures(a, Family())[0], AhuSignatures(b, Family())[0]);
}

TEST(AhuTest, DistinguishesShapes) {
  // Path of 3 vs star of 3 (both rooted at 0, three vertices).
  RootedForest path(3), star(3);
  ASSERT_TRUE(path.Attach(1, 0).ok());
  ASSERT_TRUE(path.Attach(2, 1).ok());
  ASSERT_TRUE(star.Attach(1, 0).ok());
  ASSERT_TRUE(star.Attach(2, 0).ok());
  EXPECT_NE(AhuSignatures(path, Family())[0],
            AhuSignatures(star, Family())[0]);
}

TEST(AhuTest, IsomorphicSubtreesShareSignature) {
  RootedForest f(6);
  // Two identical cherries: 0-(1,2) and 3-(4,5).
  ASSERT_TRUE(f.Attach(1, 0).ok());
  ASSERT_TRUE(f.Attach(2, 0).ok());
  ASSERT_TRUE(f.Attach(4, 3).ok());
  ASSERT_TRUE(f.Attach(5, 3).ok());
  std::vector<uint64_t> sigs = AhuSignatures(f, Family());
  EXPECT_EQ(sigs[0], sigs[3]);
  EXPECT_NE(sigs[0], sigs[1]);
}

TEST(ForestIsomorphismClassTest, InvariantUnderRelabeling) {
  Rng rng(7);
  RootedForest f = RootedForest::Random(60, 5, 0.15, &rng);
  // Relabel: mirror the attach structure in depth-sorted order (so every
  // child is attached while still a root).
  std::vector<uint32_t> order(60);
  for (uint32_t v = 0; v < 60; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&f](uint32_t a, uint32_t b) {
    return f.Depth(a) < f.Depth(b);
  });
  std::vector<uint32_t> relabel(60);
  for (uint32_t i = 0; i < 60; ++i) relabel[order[i]] = (i + 13) % 60;
  RootedForest h(60);
  for (uint32_t v : order) {
    if (!f.IsRoot(v)) {
      ASSERT_TRUE(h.Attach(relabel[v], relabel[f.Parent(v)]).ok());
    }
  }
  EXPECT_TRUE(AreForestsIsomorphic(f, h, Family()));
}

TEST(ForestIsomorphismClassTest, DistinguishesDifferentForests) {
  Rng rng(8);
  RootedForest f = RootedForest::Random(80, 5, 0.15, &rng);
  RootedForest g = f;
  ASSERT_EQ(g.Perturb(1, 6, &rng), 1u);
  EXPECT_FALSE(AreForestsIsomorphic(f, g, Family()));
}

TEST(ForestIsomorphismClassTest, SizeMismatch) {
  EXPECT_FALSE(AreForestsIsomorphic(RootedForest(3), RootedForest(4),
                                    Family()));
}

TEST(ForestIsomorphismClassTest, DifferentFamiliesDifferentClasses) {
  RootedForest f(5);
  HashFamily f1(1, 1), f2(2, 2);
  EXPECT_NE(ForestIsomorphismClass(f, f1), ForestIsomorphismClass(f, f2));
}

}  // namespace
}  // namespace setrec
