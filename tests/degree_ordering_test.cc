#include "graph/degree_ordering.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/separated_instance.h"

namespace setrec {
namespace {

std::vector<size_t> SortedDegrees(const Graph& g) {
  std::vector<size_t> degrees;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    degrees.push_back(g.Degree(v));
  }
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

TEST(SeparatedInstanceTest, SatisfiesDefinition51) {
  SeparatedInstanceSpec spec;
  spec.n = 1200;
  spec.h = 28;
  spec.d = 1;
  spec.seed = 1;
  Result<Graph> g = MakeSeparatedGraph(spec);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(IsSeparated(g.value(), spec.h, spec.d + 1, 2 * spec.d + 1));
}

TEST(SeparatedInstanceTest, InfeasibleSpecsRejected) {
  SeparatedInstanceSpec spec;
  spec.h = 0;
  EXPECT_FALSE(MakeSeparatedGraph(spec).ok());
  spec.h = 65;
  EXPECT_FALSE(MakeSeparatedGraph(spec).ok());
  spec.h = 4;
  spec.d = 5;  // 2d+3 = 13 > h.
  EXPECT_FALSE(MakeSeparatedGraph(spec).ok());
}

TEST(IsSeparatedTest, DetectsDegreeTies) {
  // A 4-cycle: all degrees equal, so no gap of 1 among the top 2.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  EXPECT_FALSE(IsSeparated(g, 2, 1, 1));
}

TEST(TheoremFiveThreeHTest, TinyAtLaptopScale) {
  // The theorem's h is below 1 for any laptop-scale n — this is exactly
  // why benches plant separated instances (documented in EXPERIMENTS.md).
  EXPECT_LT(TheoremFiveThreeH(100000, 0.3, 2, 0.5), 2.0);
  // And grows with n.
  EXPECT_GT(TheoremFiveThreeH(1ull << 40, 0.3, 2, 0.5),
            TheoremFiveThreeH(1ull << 20, 0.3, 2, 0.5));
}

struct OrderingCase {
  size_t n;
  size_t h;
  size_t d;
  uint64_t seed;
};

class DegreeOrderingSweep : public ::testing::TestWithParam<OrderingCase> {};

TEST_P(DegreeOrderingSweep, ReconcilesPerturbedPlantedInstances) {
  const OrderingCase c = GetParam();
  SeparatedInstanceSpec spec;
  spec.n = c.n;
  spec.h = c.h;
  spec.d = c.d;
  spec.seed = c.seed;
  Result<Graph> base_r = MakeSeparatedGraph(spec);
  ASSERT_TRUE(base_r.ok()) << base_r.status().ToString();
  const Graph& base = base_r.value();

  Rng rng(c.seed * 997 + c.n);
  Graph alice = base, bob = base;
  alice.Perturb(c.d - c.d / 2, &rng);
  bob.Perturb(c.d / 2, &rng);

  Channel ch;
  Result<GraphReconcileOutcome> rec =
      DegreeOrderingReconcile(alice, bob, c.d, c.h, c.seed + 5, &ch);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // The recovered graph carries Alice's protocol labeling; degree sequence
  // and edge count certify isomorphism-level agreement (exact isomorphism
  // testing at n=1200 is out of scope for the exact canonicalizer).
  EXPECT_EQ(rec.value().recovered.num_edges(), alice.num_edges());
  EXPECT_EQ(SortedDegrees(rec.value().recovered), SortedDegrees(alice));
  EXPECT_EQ(ch.rounds(), 1u);  // Theorem 5.2: one round.
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DegreeOrderingSweep,
    ::testing::Values(OrderingCase{800, 28, 1, 1}, OrderingCase{800, 28, 1, 2},
                      OrderingCase{1200, 28, 1, 3},
                      OrderingCase{2000, 36, 2, 4},
                      OrderingCase{2000, 36, 2, 5},
                      OrderingCase{4000, 44, 3, 6}));

TEST(DegreeOrderingTest, ZeroPerturbationIdentity) {
  SeparatedInstanceSpec spec;
  spec.n = 800;
  spec.h = 28;
  spec.d = 1;
  spec.seed = 9;
  Result<Graph> base = MakeSeparatedGraph(spec);
  ASSERT_TRUE(base.ok());
  Channel ch;
  Result<GraphReconcileOutcome> rec = DegreeOrderingReconcile(
      base.value(), base.value(), 1, spec.h, 10, &ch);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec.value().recovered.num_edges(), base.value().num_edges());
}

TEST(DegreeOrderingTest, MismatchedSizesRejected) {
  Channel ch;
  EXPECT_FALSE(DegreeOrderingReconcile(Graph(5), Graph(6), 1, 2, 1, &ch).ok());
}

TEST(DegreeOrderingTest, BadHRejected) {
  Channel ch;
  EXPECT_FALSE(DegreeOrderingReconcile(Graph(5), Graph(5), 1, 0, 1, &ch).ok());
  EXPECT_FALSE(DegreeOrderingReconcile(Graph(5), Graph(5), 1, 5, 1, &ch).ok());
}

TEST(DegreeOrderingTest, NonSeparatedGraphFailsDetectably) {
  // A 4-regular-ish tiny random graph is nowhere near separated: the
  // protocol must fail with an error, not return a wrong graph.
  Rng rng(11);
  Graph base = Graph::RandomGnp(60, 0.3, &rng);
  Graph alice = base, bob = base;
  alice.Perturb(2, &rng);
  Channel ch;
  Result<GraphReconcileOutcome> rec =
      DegreeOrderingReconcile(alice, bob, 4, 6, 12, &ch);
  EXPECT_FALSE(rec.ok());
}

TEST(DegreeOrderingTest, CommunicationScalesWithDNotN) {
  // Theorem 5.2: O(d (log d log h + log n)) bits — reconciliation cost is
  // driven by d, not by graph size.
  auto run = [](size_t n, uint64_t seed) -> size_t {
    SeparatedInstanceSpec spec;
    spec.n = n;
    spec.h = 28;
    spec.d = 1;
    spec.seed = seed;
    Result<Graph> base = MakeSeparatedGraph(spec);
    EXPECT_TRUE(base.ok());
    Rng rng(seed);
    Graph alice = base.value(), bob = base.value();
    alice.Perturb(1, &rng);
    Channel ch;
    Result<GraphReconcileOutcome> rec =
        DegreeOrderingReconcile(alice, bob, 1, 28, seed + 3, &ch);
    EXPECT_TRUE(rec.ok()) << rec.status().ToString();
    return ch.total_bytes();
  };
  size_t small = run(700, 21);
  size_t large = run(2100, 22);
  EXPECT_LT(large, 2 * small);  // 3x the graph, <2x the bytes.
}

}  // namespace
}  // namespace setrec
