// Tests for the obs SessionTracer ring: wraparound at capacity, the
// dump-exactly-once contract for slow sessions, and the zero-heap-allocation
// guarantee on the Record path (measured with the same replaced operator new
// that backs the decode_allocs_warm bench claim).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/alloc_counter.h"
#include "obs/trace.h"

namespace setrec::obs {
namespace {

// Runs `fn(out)` against an in-memory FILE* and returns what it printed.
template <typename Fn>
std::string CaptureDump(Fn&& fn) {
  char* buf = nullptr;
  size_t len = 0;
  std::FILE* out = open_memstream(&buf, &len);
  EXPECT_NE(out, nullptr);
  fn(out);
  std::fclose(out);
  std::string text(buf, len);
  std::free(buf);
  return text;
}

size_t CountLines(const std::string& text) {
  size_t n = 0;
  for (char c : text) {
    if (c == '\n') ++n;
  }
  return n;
}

TEST(SessionTracerTest, DisabledUntilConfigured) {
  SessionTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.Configure(16, 0);  // Threshold 0 keeps it disabled.
  EXPECT_FALSE(tracer.enabled());
  tracer.Configure(0, 1000);  // So does an empty ring.
  EXPECT_FALSE(tracer.enabled());
  tracer.Configure(16, 1000);
  EXPECT_TRUE(tracer.enabled());
}

TEST(SessionTracerTest, DumpContainsSpanTree) {
  SessionTracer tracer;
  tracer.Configure(64, 1000);
  tracer.Record(42, TracePhase::kSession, true, 10'000);
  tracer.Record(42, TracePhase::kRoundWait, true, 11'000);
  tracer.Record(42, TracePhase::kRoundWait, false, 15'000);
  tracer.Record(42, TracePhase::kSession, false, 20'000);
  const std::string text = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(42, /*trace_id=*/0, 10'000, "iblt2/dense", out);
  });
  EXPECT_NE(text.find("session 42"), std::string::npos);
  EXPECT_NE(text.find("iblt2/dense"), std::string::npos);
  EXPECT_NE(text.find("> session"), std::string::npos);
  EXPECT_NE(text.find("> round-wait"), std::string::npos);
  EXPECT_NE(text.find("< round-wait"), std::string::npos);
  // Header + 4 events.
  EXPECT_EQ(CountLines(text), 5u);
  EXPECT_EQ(tracer.dumps(), 1u);
}

TEST(SessionTracerTest, BelowThresholdDoesNotDump) {
  SessionTracer tracer;
  tracer.Configure(64, 1'000'000);
  tracer.Record(7, TracePhase::kSession, true, 0);
  tracer.Record(7, TracePhase::kSession, false, 500);
  const std::string text = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(7, /*trace_id=*/0, 500, "naive/dense", out);
  });
  EXPECT_TRUE(text.empty());
  EXPECT_EQ(tracer.dumps(), 0u);
}

TEST(SessionTracerTest, RingWrapsAtCapacity) {
  SessionTracer tracer;
  tracer.Configure(8, 1);
  // 20 events for session 5: only the newest 8 survive the ring.
  for (uint64_t i = 0; i < 20; ++i) {
    tracer.Record(5, TracePhase::kRoundWait, i % 2 == 0, 1'000'000 * i);
  }
  const std::string text = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(5, /*trace_id=*/0, 1'000'000, "cascade/sparse", out);
  });
  // Header + exactly capacity events, oldest first.
  EXPECT_EQ(CountLines(text), 1u + 8u);
  // The first surviving event is number 12 (ns=12000) — relative +0.000 and
  // the last is number 19 at +7.000 ms.
  EXPECT_NE(text.find("+0.000 ms"), std::string::npos);
  EXPECT_NE(text.find("+7.000 ms"), std::string::npos);
}

TEST(SessionTracerTest, DumpFiresExactlyOncePerSession) {
  SessionTracer tracer;
  tracer.Configure(32, 1);
  tracer.Record(9, TracePhase::kSession, true, 0);
  tracer.Record(9, TracePhase::kSession, false, 5'000'000);
  const std::string first = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(9, /*trace_id=*/0, 5'000'000, "multiround/dense", out);
  });
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(tracer.dumps(), 1u);
  // A duplicate end for the same session finds its events blanked.
  const std::string second = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(9, /*trace_id=*/0, 5'000'000, "multiround/dense", out);
  });
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(tracer.dumps(), 1u);
  // Other sessions' events are untouched by the blanking.
  tracer.Record(10, TracePhase::kSession, true, 0);
  tracer.Record(10, TracePhase::kSession, false, 2'000'000);
  const std::string other = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(10, /*trace_id=*/0, 2'000'000, "multiround/dense", out);
  });
  EXPECT_FALSE(other.empty());
  EXPECT_EQ(tracer.dumps(), 2u);
}

TEST(SessionTracerTest, ArmedWithCaptureOnly) {
  SessionTracer tracer;
  EXPECT_FALSE(tracer.armed());
  tracer.EnableCapture(16);  // TRACE? retention without a slow threshold.
  EXPECT_TRUE(tracer.armed());
  EXPECT_FALSE(tracer.enabled());  // Slow dumping stays off.
  EXPECT_EQ(tracer.capacity(), 16u);

  SessionTracer configured;
  configured.Configure(8, 1000);
  configured.EnableCapture(16);  // Keeps the configured ring size.
  EXPECT_EQ(configured.capacity(), 8u);
  EXPECT_TRUE(configured.armed());
  EXPECT_TRUE(configured.enabled());
}

TEST(SessionTracerTest, CaptureRetainsTracedSessions) {
  SessionTracer tracer;
  tracer.EnableCapture(64);
  tracer.Record(3, TracePhase::kSession, true, 1'000, /*trace_id=*/0xab);
  tracer.Record(3, TracePhase::kRecvWait, true, 2'000, 0xab);
  tracer.Record(3, TracePhase::kRecvWait, false, 3'000, 0xab);
  tracer.Record(3, TracePhase::kSession, false, 4'000, 0xab);
  tracer.OnSessionEnd(3, /*trace_id=*/0xab, 3'000, "iblt2/dense", nullptr);

  // A fast untraced session is not retained.
  tracer.Record(4, TracePhase::kSession, true, 5'000);
  tracer.Record(4, TracePhase::kSession, false, 6'000);
  tracer.OnSessionEnd(4, /*trace_id=*/0, 1'000, "iblt2/dense", nullptr);

  std::vector<CompletedTrace> got = tracer.SnapshotCompleted();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].trace_id, 0xabu);
  EXPECT_EQ(got[0].session_id, 3u);
  EXPECT_EQ(got[0].latency_ns, 3'000u);
  EXPECT_FALSE(got[0].slow);
  EXPECT_EQ(got[0].label, "iblt2/dense");
  ASSERT_EQ(got[0].events.size(), 4u);
  EXPECT_EQ(got[0].events[0].phase, TracePhase::kSession);
  EXPECT_TRUE(got[0].events[0].enter);
  EXPECT_EQ(got[0].events[2].phase, TracePhase::kRecvWait);
  EXPECT_FALSE(got[0].events[2].enter);

  // A duplicate end finds its ring events blanked: no second entry.
  tracer.OnSessionEnd(3, 0xab, 3'000, "iblt2/dense", nullptr);
  EXPECT_EQ(tracer.SnapshotCompleted().size(), 1u);
}

TEST(SessionTracerTest, CaptureKeepsSlowUntracedSessions) {
  SessionTracer tracer;
  tracer.Configure(64, 1'000);
  tracer.EnableCapture(64);
  tracer.Record(5, TracePhase::kSession, true, 0);
  tracer.Record(5, TracePhase::kSession, false, 9'000);
  const std::string text = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(5, /*trace_id=*/0, 9'000, "naive/dense", out);
  });
  EXPECT_FALSE(text.empty());  // Slow: dumped...
  std::vector<CompletedTrace> got = tracer.SnapshotCompleted();
  ASSERT_EQ(got.size(), 1u);  // ...and retained for TRACE?.
  EXPECT_EQ(got[0].trace_id, 0u);
  EXPECT_TRUE(got[0].slow);
}

TEST(SessionTracerTest, CompletedStoreDropsOldest) {
  SessionTracer tracer;
  tracer.EnableCapture(16);
  for (uint64_t i = 1; i <= 40; ++i) {
    tracer.Record(i, TracePhase::kSession, true, i * 10);
    tracer.Record(i, TracePhase::kSession, false, i * 10 + 5);
    tracer.OnSessionEnd(i, /*trace_id=*/i + 100, 5, "iblt2/dense", nullptr);
  }
  std::vector<CompletedTrace> got = tracer.SnapshotCompleted();
  ASSERT_EQ(got.size(), 32u);  // Bounded: the oldest 8 were dropped.
  EXPECT_EQ(got.front().session_id, 9u);
  EXPECT_EQ(got.back().session_id, 40u);
}

TEST(SessionTracerTest, SlowDumpIncludesTraceId) {
  SessionTracer tracer;
  tracer.Configure(64, 1'000);
  tracer.Record(6, TracePhase::kSession, true, 0);
  tracer.Record(6, TracePhase::kSession, false, 5'000);
  const std::string text = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(6, /*trace_id=*/0xab, 5'000, "iblt2/dense", out);
  });
  EXPECT_NE(text.find("trace 00000000000000ab"), std::string::npos);
}

TEST(SessionTracerTest, DumpRingDoesNotBlank) {
  SessionTracer tracer;
  tracer.Configure(32, 1);
  tracer.Record(11, TracePhase::kSession, true, 0, /*trace_id=*/0xcd);
  tracer.Record(11, TracePhase::kLeaseWait, true, 1'000, 0xcd);
  const std::string first = CaptureDump([&](std::FILE* out) {
    EXPECT_EQ(tracer.DumpRing(out), 2u);
  });
  EXPECT_NE(first.find("session 11"), std::string::npos);
  EXPECT_NE(first.find("trace 00000000000000cd"), std::string::npos);
  EXPECT_NE(first.find("> lease-wait"), std::string::npos);
  // The watchdog's view is read-only: a second dump sees the same events,
  // and the driver's own OnSessionEnd still finds them afterwards.
  const std::string second = CaptureDump([&](std::FILE* out) {
    EXPECT_EQ(tracer.DumpRing(out), 2u);
  });
  EXPECT_EQ(first, second);
  tracer.Record(11, TracePhase::kLeaseWait, false, 2'000, 0xcd);
  tracer.Record(11, TracePhase::kSession, false, 3'000, 0xcd);
  const std::string dump = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(11, 0xcd, 3'000, "iblt2/dense", out);
  });
  EXPECT_NE(dump.find("> session"), std::string::npos);
  EXPECT_EQ(CountLines(dump), 5u);
}

TEST(SessionTracerTest, RecordDoesNotAllocate) {
  SessionTracer tracer;
  tracer.Configure(1024, 1'000'000);  // The ring is the only allocation.
  const size_t allocs = CountAllocs([&] {
    for (uint64_t i = 0; i < 10'000; ++i) {
      tracer.Record(i % 17 + 1,
                    i % 2 == 0 ? TracePhase::kRoundWait
                               : TracePhase::kFlushWait,
                    i % 2 == 0, i * 100);
    }
  });
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
}  // namespace setrec::obs
