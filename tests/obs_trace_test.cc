// Tests for the obs SessionTracer ring: wraparound at capacity, the
// dump-exactly-once contract for slow sessions, and the zero-heap-allocation
// guarantee on the Record path (measured with the same replaced operator new
// that backs the decode_allocs_warm bench claim).

#include <cstdint>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "bench/alloc_counter.h"
#include "obs/trace.h"

namespace setrec::obs {
namespace {

// Runs `fn(out)` against an in-memory FILE* and returns what it printed.
template <typename Fn>
std::string CaptureDump(Fn&& fn) {
  char* buf = nullptr;
  size_t len = 0;
  std::FILE* out = open_memstream(&buf, &len);
  EXPECT_NE(out, nullptr);
  fn(out);
  std::fclose(out);
  std::string text(buf, len);
  std::free(buf);
  return text;
}

size_t CountLines(const std::string& text) {
  size_t n = 0;
  for (char c : text) {
    if (c == '\n') ++n;
  }
  return n;
}

TEST(SessionTracerTest, DisabledUntilConfigured) {
  SessionTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.Configure(16, 0);  // Threshold 0 keeps it disabled.
  EXPECT_FALSE(tracer.enabled());
  tracer.Configure(0, 1000);  // So does an empty ring.
  EXPECT_FALSE(tracer.enabled());
  tracer.Configure(16, 1000);
  EXPECT_TRUE(tracer.enabled());
}

TEST(SessionTracerTest, DumpContainsSpanTree) {
  SessionTracer tracer;
  tracer.Configure(64, 1000);
  tracer.Record(42, TracePhase::kSession, true, 10'000);
  tracer.Record(42, TracePhase::kRoundWait, true, 11'000);
  tracer.Record(42, TracePhase::kRoundWait, false, 15'000);
  tracer.Record(42, TracePhase::kSession, false, 20'000);
  const std::string text = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(42, 10'000, "iblt2/dense", out);
  });
  EXPECT_NE(text.find("session 42"), std::string::npos);
  EXPECT_NE(text.find("iblt2/dense"), std::string::npos);
  EXPECT_NE(text.find("> session"), std::string::npos);
  EXPECT_NE(text.find("> round-wait"), std::string::npos);
  EXPECT_NE(text.find("< round-wait"), std::string::npos);
  // Header + 4 events.
  EXPECT_EQ(CountLines(text), 5u);
  EXPECT_EQ(tracer.dumps(), 1u);
}

TEST(SessionTracerTest, BelowThresholdDoesNotDump) {
  SessionTracer tracer;
  tracer.Configure(64, 1'000'000);
  tracer.Record(7, TracePhase::kSession, true, 0);
  tracer.Record(7, TracePhase::kSession, false, 500);
  const std::string text = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(7, 500, "naive/dense", out);
  });
  EXPECT_TRUE(text.empty());
  EXPECT_EQ(tracer.dumps(), 0u);
}

TEST(SessionTracerTest, RingWrapsAtCapacity) {
  SessionTracer tracer;
  tracer.Configure(8, 1);
  // 20 events for session 5: only the newest 8 survive the ring.
  for (uint64_t i = 0; i < 20; ++i) {
    tracer.Record(5, TracePhase::kRoundWait, i % 2 == 0, 1'000'000 * i);
  }
  const std::string text = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(5, 1'000'000, "cascade/sparse", out);
  });
  // Header + exactly capacity events, oldest first.
  EXPECT_EQ(CountLines(text), 1u + 8u);
  // The first surviving event is number 12 (ns=12000) — relative +0.000 and
  // the last is number 19 at +7.000 ms.
  EXPECT_NE(text.find("+0.000 ms"), std::string::npos);
  EXPECT_NE(text.find("+7.000 ms"), std::string::npos);
}

TEST(SessionTracerTest, DumpFiresExactlyOncePerSession) {
  SessionTracer tracer;
  tracer.Configure(32, 1);
  tracer.Record(9, TracePhase::kSession, true, 0);
  tracer.Record(9, TracePhase::kSession, false, 5'000'000);
  const std::string first = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(9, 5'000'000, "multiround/dense", out);
  });
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(tracer.dumps(), 1u);
  // A duplicate end for the same session finds its events blanked.
  const std::string second = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(9, 5'000'000, "multiround/dense", out);
  });
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(tracer.dumps(), 1u);
  // Other sessions' events are untouched by the blanking.
  tracer.Record(10, TracePhase::kSession, true, 0);
  tracer.Record(10, TracePhase::kSession, false, 2'000'000);
  const std::string other = CaptureDump([&](std::FILE* out) {
    tracer.OnSessionEnd(10, 2'000'000, "multiround/dense", out);
  });
  EXPECT_FALSE(other.empty());
  EXPECT_EQ(tracer.dumps(), 2u);
}

TEST(SessionTracerTest, RecordDoesNotAllocate) {
  SessionTracer tracer;
  tracer.Configure(1024, 1'000'000);  // The ring is the only allocation.
  const size_t allocs = CountAllocs([&] {
    for (uint64_t i = 0; i < 10'000; ++i) {
      tracer.Record(i % 17 + 1,
                    i % 2 == 0 ? TracePhase::kRoundWait
                               : TracePhase::kFlushWait,
                    i % 2 == 0, i * 100);
    }
  });
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
}  // namespace setrec::obs
