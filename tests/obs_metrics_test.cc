// Tests for the obs layer's LatencyHistogram and MetricRegistry: bucket
// geometry (log-linear, <= 25% bound ratio), quantile accuracy vs the exact
// sorted-sample answer (the satellite contract: within one bucket), and
// element-wise merge semantics the sharded snapshot path relies on.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"

namespace setrec::obs {
namespace {

TEST(LatencyHistogramTest, BucketIndexExactBelowEight) {
  for (uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(v), v);
  }
}

TEST(LatencyHistogramTest, BucketIndexMonotoneAndInverted) {
  // Sweep exponentially-spaced values plus neighbors across the full range.
  std::vector<uint64_t> values;
  for (int shift = 0; shift < 64; ++shift) {
    const uint64_t base = uint64_t{1} << shift;
    values.push_back(base - 1);
    values.push_back(base);
    values.push_back(base + 1);
  }
  values.push_back(UINT64_MAX);
  std::sort(values.begin(), values.end());
  size_t prev = 0;
  for (uint64_t v : values) {
    const size_t idx = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(idx, LatencyHistogram::kBuckets);
    EXPECT_GE(idx, prev) << "non-monotone at v=" << v;
    prev = idx;
    // v lands inside [lower(idx), lower(idx+1)).
    EXPECT_LE(LatencyHistogram::BucketLowerBound(idx), v);
    if (idx < LatencyHistogram::BucketIndex(UINT64_MAX)) {
      EXPECT_GT(LatencyHistogram::BucketLowerBound(idx + 1), v);
    }
  }
}

TEST(LatencyHistogramTest, ConsecutiveBoundsWithinQuarter) {
  // Log-linear resolution claim: above the unit buckets, consecutive bucket
  // lower bounds never differ by more than 25% (checked over the buckets
  // actually reachable — the top index is BucketIndex(UINT64_MAX)).
  const size_t top = LatencyHistogram::BucketIndex(UINT64_MAX);
  for (size_t i = 8; i + 1 <= top; ++i) {
    const double lo =
        static_cast<double>(LatencyHistogram::BucketLowerBound(i));
    const double hi =
        static_cast<double>(LatencyHistogram::BucketLowerBound(i + 1));
    EXPECT_LE(hi / lo, 1.25) << "bucket " << i;
  }
}

TEST(LatencyHistogramTest, CountSumMax) {
  LatencyHistogram h;
  EXPECT_EQ(h.Quantile(0.5), 0u);  // Empty histogram reads zero.
  h.Record(5);
  h.Record(100);
  h.Record(7);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 112u);
  EXPECT_EQ(h.max(), 100u);
}

// The satellite contract: histogram quantiles land within one bucket of the
// exact sorted-vector answer on a known distribution.
void ExpectQuantilesWithinOneBucket(const std::vector<uint64_t>& samples) {
  LatencyHistogram h;
  std::vector<uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t v : samples) h.Record(v);
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const size_t rank = std::min(
        sorted.size() - 1,
        static_cast<size_t>(q * static_cast<double>(sorted.size())));
    const uint64_t exact = sorted[rank];
    const uint64_t approx = h.Quantile(q);
    const auto exact_idx =
        static_cast<long>(LatencyHistogram::BucketIndex(exact));
    const auto approx_idx =
        static_cast<long>(LatencyHistogram::BucketIndex(approx));
    EXPECT_LE(std::abs(exact_idx - approx_idx), 1)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(LatencyHistogramTest, QuantilesMatchSortedUniform) {
  std::mt19937_64 rng(41);
  std::uniform_int_distribution<uint64_t> dist(100, 5'000'000);
  std::vector<uint64_t> samples(20'000);
  for (uint64_t& v : samples) v = dist(rng);
  ExpectQuantilesWithinOneBucket(samples);
}

TEST(LatencyHistogramTest, QuantilesMatchSortedHeavyTail) {
  // Latency-shaped: lognormal-ish heavy tail spanning several octaves.
  std::mt19937_64 rng(97);
  std::lognormal_distribution<double> dist(11.0, 1.5);  // ~60us median.
  std::vector<uint64_t> samples(20'000);
  for (uint64_t& v : samples) v = static_cast<uint64_t>(dist(rng)) + 1;
  ExpectQuantilesWithinOneBucket(samples);
}

TEST(LatencyHistogramTest, MergeEqualsSingleRecorder) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<uint64_t> dist(1, 1'000'000);
  LatencyHistogram whole;
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t v = dist(rng);
    whole.Record(v);
    (i % 2 == 0 ? a : b).Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.sum(), whole.sum());
  EXPECT_EQ(a.max(), whole.max());
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    ASSERT_EQ(a.bucket(i), whole.bucket(i)) << "bucket " << i;
  }
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Quantile(q), whole.Quantile(q)) << "q=" << q;
  }
}

TEST(MetricRegistryTest, MergeAccumulatesEveryField) {
  MetricRegistry a;
  MetricRegistry b;
  a.session_latency[1][0].Record(100);
  b.session_latency[1][0].Record(200);
  b.round_latency[3][1].Record(50);
  a.flush_occupancy.Record(512);
  b.flush_occupancy.Record(1024);
  a.decode_failures = 2;
  b.decode_failures = 3;
  b.retry_rounds = 7;
  a.Merge(b);
  EXPECT_EQ(a.session_latency[1][0].count(), 2u);
  EXPECT_EQ(a.round_latency[3][1].count(), 1u);
  EXPECT_EQ(a.flush_occupancy.count(), 2u);
  EXPECT_EQ(a.flush_occupancy.max(), 1024u);
  EXPECT_EQ(a.decode_failures, 5u);
  EXPECT_EQ(a.retry_rounds, 7u);
}

TEST(PumpMetricsTest, MergeTakesWatermarkMax) {
  PumpMetrics a;
  PumpMetrics b;
  a.outbuf_high_watermark = 4096;
  b.outbuf_high_watermark = 1024;
  a.stat_requests = 1;
  b.stat_requests = 2;
  b.trace_requests = 4;
  b.frame_decode_failures = 1;
  a.Merge(b);
  EXPECT_EQ(a.outbuf_high_watermark, 4096u);
  EXPECT_EQ(a.stat_requests, 3u);
  EXPECT_EQ(a.trace_requests, 4u);
  EXPECT_EQ(a.frame_decode_failures, 1u);
}

constexpr uint64_t kSec = RateRing::kWindowNs;

TEST(RateRingTest, EmptyAndSingleObservationReadZero) {
  RateRing ring;
  EXPECT_EQ(ring.SnapshotAt(5 * kSec).sessions_per_sec, 0.0);
  ring.Advance(10 * kSec, {});  // Baseline only: no span yet.
  const RateRing::Rates r = ring.SnapshotAt(10 * kSec);
  EXPECT_EQ(r.span_ns, 0u);
  EXPECT_EQ(r.sessions_per_sec, 0.0);
}

TEST(RateRingTest, RatesOverOneSecond) {
  RateRing ring;
  ring.Advance(10 * kSec, {0, 0, 0});
  ring.Advance(11 * kSec, {10, 20'000, 2});
  const RateRing::Rates r = ring.SnapshotAt(11 * kSec);
  EXPECT_EQ(r.span_ns, kSec);
  EXPECT_DOUBLE_EQ(r.sessions_per_sec, 10.0);
  EXPECT_DOUBLE_EQ(r.bytes_per_sec, 20'000.0);
  EXPECT_DOUBLE_EQ(r.decode_failures_per_min, 120.0);
}

TEST(RateRingTest, SubSecondAdvancesLandInTheOpenWindow) {
  RateRing ring;
  ring.Advance(10 * kSec, {0, 0, 0});
  // Four advances inside one window, then read at the half-second mark:
  // the open window's age is what divides the counts.
  ring.Advance(10 * kSec + kSec / 4, {5, 500, 0});
  ring.Advance(10 * kSec + kSec / 2, {10, 1'000, 0});
  const RateRing::Rates r = ring.SnapshotAt(10 * kSec + kSec / 2);
  EXPECT_EQ(r.span_ns, kSec / 2);
  EXPECT_DOUBLE_EQ(r.sessions_per_sec, 20.0);
}

TEST(RateRingTest, IdleRingDecaysTowardZero) {
  RateRing ring;
  ring.Advance(10 * kSec, {0, 0, 0});
  ring.Advance(11 * kSec, {100, 0, 0});  // One busy second: 100/s.
  EXPECT_DOUBLE_EQ(ring.SnapshotAt(11 * kSec).sessions_per_sec, 100.0);
  // Reading later without traffic stretches the open window: the same
  // 100 sessions over 1 closed + 10 open seconds.
  EXPECT_NEAR(ring.SnapshotAt(21 * kSec).sessions_per_sec, 100.0 / 11.0,
              1e-9);
}

TEST(RateRingTest, WrapKeepsOnlyTheRetainedMinute) {
  RateRing ring;
  ring.Advance(0 * kSec + 1, {0, 0, 0});
  // 100 windows at 60/s each; only the last kWindows survive.
  for (uint64_t i = 1; i <= 100; ++i) {
    ring.Advance(i * kSec + 1, {i * 60, 0, 0});
  }
  const RateRing::Rates r = ring.SnapshotAt(100 * kSec + 1);
  EXPECT_EQ(r.span_ns, RateRing::kWindows * kSec);
  EXPECT_DOUBLE_EQ(r.sessions_per_sec, 60.0);
}

TEST(RateRingTest, GapLongerThanTheRingSkipsAhead) {
  RateRing ring;
  ring.Advance(10 * kSec, {0, 0, 0});
  ring.Advance(11 * kSec, {600, 0, 0});
  // A 10-minute silence then one more advance: the busy second fell off
  // the ring, so the retained minute is all idle and reads zero — a
  // long-stopped server does not report its last busy second forever.
  const uint64_t later = 611 * kSec;
  ring.Advance(later, {600, 0, 0});
  const RateRing::Rates r = ring.SnapshotAt(later);
  EXPECT_EQ(r.span_ns, RateRing::kWindows * kSec);
  EXPECT_DOUBLE_EQ(r.sessions_per_sec, 0.0);
  // New traffic after the gap shows up immediately in the open window.
  ring.Advance(later + kSec / 2, {660, 0, 0});
  EXPECT_GT(ring.SnapshotAt(later + kSec / 2).sessions_per_sec, 0.0);
}

TEST(RateRingTest, AccumulateSumsAcrossShards) {
  RateRing::Rates a;
  a.sessions_per_sec = 5.0;
  a.bytes_per_sec = 100.0;
  a.span_ns = 2 * kSec;
  RateRing::Rates b;
  b.sessions_per_sec = 7.0;
  b.decode_failures_per_min = 3.0;
  b.span_ns = 3 * kSec;
  a.Accumulate(b);
  EXPECT_DOUBLE_EQ(a.sessions_per_sec, 12.0);
  EXPECT_DOUBLE_EQ(a.bytes_per_sec, 100.0);
  EXPECT_DOUBLE_EQ(a.decode_failures_per_min, 3.0);
  EXPECT_EQ(a.span_ns, 3 * kSec);  // Longest shard span wins.
}

TEST(ExpositionTest, HeaderValidationAcceptsKnownVersionsOnly) {
  EXPECT_TRUE(ValidMetricsExpositionHeader("# setrec-metrics v1\n"));
  EXPECT_TRUE(ValidMetricsExpositionHeader("# setrec-metrics v2\n"));
  EXPECT_TRUE(ValidMetricsExpositionHeader("# setrec-metrics v2"));
  EXPECT_FALSE(ValidMetricsExpositionHeader("# setrec-metrics v3\n"));
  EXPECT_FALSE(ValidMetricsExpositionHeader("# setrec-metrics v12\n"));
  EXPECT_FALSE(ValidMetricsExpositionHeader("# setrec-trace v1\n"));
  EXPECT_FALSE(ValidMetricsExpositionHeader(""));
  EXPECT_FALSE(ValidMetricsExpositionHeader("counter x{} 1\n"));
}

TEST(ExpositionTest, V2KeepsTheV1PrefixAndAppendsRates) {
  ExpositionWriter w;
  w.Counter("setrec_sessions_completed", "", 4);
  RateRing::Rates rates;
  rates.sessions_per_sec = 12.4;
  rates.bytes_per_sec = 182'333.0;
  rates.span_ns = 2 * RateRing::kWindowNs;
  AppendRates(rates, w);
  const std::string text = w.Take();
  EXPECT_EQ(text.rfind("# setrec-metrics v2\n", 0), 0u);
  // The version rule: v1 line types first, `rate` lines strictly after —
  // a v1 consumer parses the prefix and stops at the first rate line.
  const size_t counter_at = text.find("counter setrec_sessions_completed{} 4");
  const size_t rate_at = text.find("rate setrec_sessions_per_sec{} 12.400");
  ASSERT_NE(counter_at, std::string::npos);
  ASSERT_NE(rate_at, std::string::npos);
  EXPECT_LT(counter_at, rate_at);
  EXPECT_NE(text.find("rate setrec_bytes_per_sec{} 182333.000"),
            std::string::npos);
  EXPECT_NE(text.find("rate setrec_decode_failures_per_min{} 0.000"),
            std::string::npos);
  EXPECT_NE(text.find("rate setrec_rate_window_seconds{} 2.000"),
            std::string::npos);
}

}  // namespace
}  // namespace setrec::obs
