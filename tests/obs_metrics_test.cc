// Tests for the obs layer's LatencyHistogram and MetricRegistry: bucket
// geometry (log-linear, <= 25% bound ratio), quantile accuracy vs the exact
// sorted-sample answer (the satellite contract: within one bucket), and
// element-wise merge semantics the sharded snapshot path relies on.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace setrec::obs {
namespace {

TEST(LatencyHistogramTest, BucketIndexExactBelowEight) {
  for (uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(v), v);
  }
}

TEST(LatencyHistogramTest, BucketIndexMonotoneAndInverted) {
  // Sweep exponentially-spaced values plus neighbors across the full range.
  std::vector<uint64_t> values;
  for (int shift = 0; shift < 64; ++shift) {
    const uint64_t base = uint64_t{1} << shift;
    values.push_back(base - 1);
    values.push_back(base);
    values.push_back(base + 1);
  }
  values.push_back(UINT64_MAX);
  std::sort(values.begin(), values.end());
  size_t prev = 0;
  for (uint64_t v : values) {
    const size_t idx = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(idx, LatencyHistogram::kBuckets);
    EXPECT_GE(idx, prev) << "non-monotone at v=" << v;
    prev = idx;
    // v lands inside [lower(idx), lower(idx+1)).
    EXPECT_LE(LatencyHistogram::BucketLowerBound(idx), v);
    if (idx < LatencyHistogram::BucketIndex(UINT64_MAX)) {
      EXPECT_GT(LatencyHistogram::BucketLowerBound(idx + 1), v);
    }
  }
}

TEST(LatencyHistogramTest, ConsecutiveBoundsWithinQuarter) {
  // Log-linear resolution claim: above the unit buckets, consecutive bucket
  // lower bounds never differ by more than 25% (checked over the buckets
  // actually reachable — the top index is BucketIndex(UINT64_MAX)).
  const size_t top = LatencyHistogram::BucketIndex(UINT64_MAX);
  for (size_t i = 8; i + 1 <= top; ++i) {
    const double lo =
        static_cast<double>(LatencyHistogram::BucketLowerBound(i));
    const double hi =
        static_cast<double>(LatencyHistogram::BucketLowerBound(i + 1));
    EXPECT_LE(hi / lo, 1.25) << "bucket " << i;
  }
}

TEST(LatencyHistogramTest, CountSumMax) {
  LatencyHistogram h;
  EXPECT_EQ(h.Quantile(0.5), 0u);  // Empty histogram reads zero.
  h.Record(5);
  h.Record(100);
  h.Record(7);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 112u);
  EXPECT_EQ(h.max(), 100u);
}

// The satellite contract: histogram quantiles land within one bucket of the
// exact sorted-vector answer on a known distribution.
void ExpectQuantilesWithinOneBucket(const std::vector<uint64_t>& samples) {
  LatencyHistogram h;
  std::vector<uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t v : samples) h.Record(v);
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const size_t rank = std::min(
        sorted.size() - 1,
        static_cast<size_t>(q * static_cast<double>(sorted.size())));
    const uint64_t exact = sorted[rank];
    const uint64_t approx = h.Quantile(q);
    const auto exact_idx =
        static_cast<long>(LatencyHistogram::BucketIndex(exact));
    const auto approx_idx =
        static_cast<long>(LatencyHistogram::BucketIndex(approx));
    EXPECT_LE(std::abs(exact_idx - approx_idx), 1)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(LatencyHistogramTest, QuantilesMatchSortedUniform) {
  std::mt19937_64 rng(41);
  std::uniform_int_distribution<uint64_t> dist(100, 5'000'000);
  std::vector<uint64_t> samples(20'000);
  for (uint64_t& v : samples) v = dist(rng);
  ExpectQuantilesWithinOneBucket(samples);
}

TEST(LatencyHistogramTest, QuantilesMatchSortedHeavyTail) {
  // Latency-shaped: lognormal-ish heavy tail spanning several octaves.
  std::mt19937_64 rng(97);
  std::lognormal_distribution<double> dist(11.0, 1.5);  // ~60us median.
  std::vector<uint64_t> samples(20'000);
  for (uint64_t& v : samples) v = static_cast<uint64_t>(dist(rng)) + 1;
  ExpectQuantilesWithinOneBucket(samples);
}

TEST(LatencyHistogramTest, MergeEqualsSingleRecorder) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<uint64_t> dist(1, 1'000'000);
  LatencyHistogram whole;
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t v = dist(rng);
    whole.Record(v);
    (i % 2 == 0 ? a : b).Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.sum(), whole.sum());
  EXPECT_EQ(a.max(), whole.max());
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    ASSERT_EQ(a.bucket(i), whole.bucket(i)) << "bucket " << i;
  }
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Quantile(q), whole.Quantile(q)) << "q=" << q;
  }
}

TEST(MetricRegistryTest, MergeAccumulatesEveryField) {
  MetricRegistry a;
  MetricRegistry b;
  a.session_latency[1][0].Record(100);
  b.session_latency[1][0].Record(200);
  b.round_latency[3][1].Record(50);
  a.flush_occupancy.Record(512);
  b.flush_occupancy.Record(1024);
  a.decode_failures = 2;
  b.decode_failures = 3;
  b.retry_rounds = 7;
  a.Merge(b);
  EXPECT_EQ(a.session_latency[1][0].count(), 2u);
  EXPECT_EQ(a.round_latency[3][1].count(), 1u);
  EXPECT_EQ(a.flush_occupancy.count(), 2u);
  EXPECT_EQ(a.flush_occupancy.max(), 1024u);
  EXPECT_EQ(a.decode_failures, 5u);
  EXPECT_EQ(a.retry_rounds, 7u);
}

TEST(PumpMetricsTest, MergeTakesWatermarkMax) {
  PumpMetrics a;
  PumpMetrics b;
  a.outbuf_high_watermark = 4096;
  b.outbuf_high_watermark = 1024;
  a.stat_requests = 1;
  b.stat_requests = 2;
  b.frame_decode_failures = 1;
  a.Merge(b);
  EXPECT_EQ(a.outbuf_high_watermark, 4096u);
  EXPECT_EQ(a.stat_requests, 3u);
  EXPECT_EQ(a.frame_decode_failures, 1u);
}

}  // namespace
}  // namespace setrec::obs
