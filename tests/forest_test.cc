#include "forest/forest.h"

#include <gtest/gtest.h>

namespace setrec {
namespace {

TEST(RootedForestTest, StartsAllRoots) {
  RootedForest f(5);
  EXPECT_EQ(f.Roots().size(), 5u);
  EXPECT_EQ(f.num_edges(), 0u);
  for (uint32_t v = 0; v < 5; ++v) {
    EXPECT_TRUE(f.IsRoot(v));
    EXPECT_EQ(f.Depth(v), 1u);
  }
}

TEST(RootedForestTest, AttachBuildsTree) {
  RootedForest f(4);
  ASSERT_TRUE(f.Attach(1, 0).ok());
  ASSERT_TRUE(f.Attach(2, 1).ok());
  ASSERT_TRUE(f.Attach(3, 1).ok());
  EXPECT_EQ(f.Parent(2), 1u);
  EXPECT_EQ(f.Children(1), (std::vector<uint32_t>{2, 3}));
  EXPECT_EQ(f.Depth(2), 3u);
  EXPECT_EQ(f.MaxDepth(), 3u);
  EXPECT_EQ(f.RootOf(3), 0u);
  EXPECT_EQ(f.Roots(), (std::vector<uint32_t>{0}));
  EXPECT_EQ(f.num_edges(), 3u);
}

TEST(RootedForestTest, AttachNonRootRejected) {
  RootedForest f(3);
  ASSERT_TRUE(f.Attach(1, 0).ok());
  // 1 is no longer a root; Section 6: inserted edge's child must be a root.
  EXPECT_FALSE(f.Attach(1, 2).ok());
}

TEST(RootedForestTest, CycleRejected) {
  RootedForest f(3);
  ASSERT_TRUE(f.Attach(1, 0).ok());
  ASSERT_TRUE(f.Attach(2, 1).ok());
  // 0 is the root of 2's tree; attaching 0 under 2 would create a cycle.
  EXPECT_FALSE(f.Attach(0, 2).ok());
}

TEST(RootedForestTest, DetachMakesRoot) {
  RootedForest f(3);
  ASSERT_TRUE(f.Attach(1, 0).ok());
  ASSERT_TRUE(f.Attach(2, 1).ok());
  ASSERT_TRUE(f.Detach(1).ok());
  EXPECT_TRUE(f.IsRoot(1));
  EXPECT_EQ(f.RootOf(2), 1u);  // Subtree moved with it.
  EXPECT_TRUE(f.Children(0).empty());
  EXPECT_FALSE(f.Detach(1).ok());  // Already a root.
}

TEST(RootedForestTest, DetachThenReattachLegal) {
  RootedForest f(4);
  ASSERT_TRUE(f.Attach(1, 0).ok());
  ASSERT_TRUE(f.Attach(2, 1).ok());
  ASSERT_TRUE(f.Detach(1).ok());
  ASSERT_TRUE(f.Attach(1, 3).ok());  // New tree.
  EXPECT_EQ(f.RootOf(2), 3u);
}

TEST(RootedForestTest, OutOfRangeRejected) {
  RootedForest f(2);
  EXPECT_FALSE(f.Attach(5, 0).ok());
  EXPECT_FALSE(f.Detach(5).ok());
}

TEST(RandomForestTest, RespectsDepthBound) {
  Rng rng(1);
  RootedForest f = RootedForest::Random(500, 4, 0.1, &rng);
  EXPECT_LE(f.MaxDepth(), 4u);
  EXPECT_GT(f.num_edges(), 300u);  // Most vertices attach.
}

TEST(RandomForestTest, RootProbOneIsEdgeless) {
  Rng rng(2);
  RootedForest f = RootedForest::Random(50, 4, 1.0, &rng);
  EXPECT_EQ(f.num_edges(), 0u);
}

TEST(PerturbTest, PreservesForestInvariants) {
  Rng rng(3);
  RootedForest f = RootedForest::Random(200, 5, 0.2, &rng);
  size_t applied = f.Perturb(20, 6, &rng);
  EXPECT_EQ(applied, 20u);
  EXPECT_LE(f.MaxDepth(), 6u);
  // Parent/child arrays stay mutually consistent.
  for (uint32_t v = 0; v < f.num_vertices(); ++v) {
    for (uint32_t c : f.Children(v)) {
      EXPECT_EQ(f.Parent(c), v);
    }
    if (!f.IsRoot(v)) {
      const auto& siblings = f.Children(f.Parent(v));
      EXPECT_NE(std::find(siblings.begin(), siblings.end(), v),
                siblings.end());
    }
  }
}

TEST(PerturbTest, ChangesStructure) {
  Rng rng(4);
  RootedForest f = RootedForest::Random(100, 5, 0.2, &rng);
  RootedForest before = f;
  f.Perturb(5, 6, &rng);
  EXPECT_NE(f, before);
}

}  // namespace
}  // namespace setrec
