#include "charpoly/charpoly_reconciler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "charpoly/gf.h"
#include "hashing/random.h"

namespace setrec {
namespace {

std::vector<uint64_t> RandomSet(Rng* rng, size_t size) {
  std::set<uint64_t> s;
  while (s.size() < size) s.insert(rng->NextU64() % (1ull << 55));
  return {s.begin(), s.end()};
}

TEST(CharPolyReconcilerTest, IdenticalSetsEmptyDiff) {
  Rng rng(1);
  std::vector<uint64_t> set = RandomSet(&rng, 50);
  CharPolyReconciler rec(4, 99);
  Result<std::vector<uint8_t>> msg = rec.BuildMessage(set);
  ASSERT_TRUE(msg.ok());
  Result<SetDifference> diff = rec.DecodeDifference(msg.value(), set);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_TRUE(diff.value().remote_only.empty());
  EXPECT_TRUE(diff.value().local_only.empty());
}

TEST(CharPolyReconcilerTest, MessageSizeExact) {
  CharPolyReconciler rec(7, 1);
  std::vector<uint64_t> set = {1, 2, 3};
  Result<std::vector<uint8_t>> msg = rec.BuildMessage(set);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().size(), rec.MessageSize());
  EXPECT_EQ(rec.MessageSize(), 8 + 8 * 7u);
}

TEST(CharPolyReconcilerTest, ElementOutOfRangeRejected) {
  CharPolyReconciler rec(4, 2);
  std::vector<uint64_t> bad = {1ull << 60};
  EXPECT_FALSE(rec.BuildMessage(bad).ok());
}

TEST(CharPolyReconcilerTest, OneSidedDifference) {
  Rng rng(2);
  std::vector<uint64_t> bob = RandomSet(&rng, 30);
  std::vector<uint64_t> alice = bob;
  alice.push_back(123456);
  alice.push_back(654321);
  std::sort(alice.begin(), alice.end());
  CharPolyReconciler rec(2, 7);
  Result<std::vector<uint8_t>> msg = rec.BuildMessage(alice);
  ASSERT_TRUE(msg.ok());
  Result<SetDifference> diff = rec.DecodeDifference(msg.value(), bob);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().remote_only,
            (std::vector<uint64_t>{123456, 654321}));
  EXPECT_TRUE(diff.value().local_only.empty());
}

TEST(CharPolyReconcilerTest, UnderestimatedBoundDetected) {
  // 6 actual differences, bound 2: must fail loudly, never silently.
  Rng rng(3);
  std::vector<uint64_t> bob = RandomSet(&rng, 40);
  std::vector<uint64_t> alice = bob;
  for (uint64_t i = 0; i < 6; ++i) alice.push_back(1000000 + i);
  std::sort(alice.begin(), alice.end());
  CharPolyReconciler rec(2, 8);
  Result<std::vector<uint8_t>> msg = rec.BuildMessage(alice);
  ASSERT_TRUE(msg.ok());
  Result<SetDifference> diff = rec.DecodeDifference(msg.value(), bob);
  EXPECT_FALSE(diff.ok());
}

TEST(CharPolyReconcilerTest, TruncatedMessageRejected) {
  CharPolyReconciler rec(4, 9);
  std::vector<uint8_t> junk = {1, 2, 3};
  Result<SetDifference> diff = rec.DecodeDifference(junk, {1, 2});
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.status().code(), StatusCode::kParseError);
}

TEST(CharPolyReconcilerTest, EmptySets) {
  CharPolyReconciler rec(3, 10);
  Result<std::vector<uint8_t>> msg = rec.BuildMessage({});
  ASSERT_TRUE(msg.ok());
  Result<SetDifference> diff = rec.DecodeDifference(msg.value(), {});
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff.value().remote_only.empty());
}

TEST(CharPolyReconcilerTest, BobEmptyRecoversWholeSet) {
  std::vector<uint64_t> alice = {10, 20, 30};
  CharPolyReconciler rec(3, 11);
  Result<std::vector<uint8_t>> msg = rec.BuildMessage(alice);
  ASSERT_TRUE(msg.ok());
  Result<SetDifference> diff = rec.DecodeDifference(msg.value(), {});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().remote_only, alice);
}

struct CpCase {
  size_t shared;
  size_t alice_only;
  size_t bob_only;
  size_t bound;  // >= alice_only + bob_only.
};

class CharPolySweep : public ::testing::TestWithParam<CpCase> {};

TEST_P(CharPolySweep, TwoSidedDifferences) {
  const CpCase c = GetParam();
  Rng rng(c.shared * 7 + c.alice_only * 3 + c.bob_only + c.bound);
  std::vector<uint64_t> pool =
      RandomSet(&rng, c.shared + c.alice_only + c.bob_only);
  const auto shared_end =
      pool.begin() + static_cast<std::ptrdiff_t>(c.shared);
  const auto alice_end =
      shared_end + static_cast<std::ptrdiff_t>(c.alice_only);
  std::vector<uint64_t> alice(pool.begin(), alice_end);
  std::vector<uint64_t> bob(pool.begin(), shared_end);
  bob.insert(bob.end(), alice_end, pool.end());
  std::sort(alice.begin(), alice.end());
  std::sort(bob.begin(), bob.end());

  CharPolyReconciler rec(c.bound, 12345);
  Result<std::vector<uint8_t>> msg = rec.BuildMessage(alice);
  ASSERT_TRUE(msg.ok());
  Result<SetDifference> diff = rec.DecodeDifference(msg.value(), bob);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_EQ(diff.value().remote_only.size(), c.alice_only);
  EXPECT_EQ(diff.value().local_only.size(), c.bob_only);
  // Applying the diff reproduces Alice's set.
  std::set<uint64_t> recovered(bob.begin(), bob.end());
  for (uint64_t e : diff.value().local_only) recovered.erase(e);
  for (uint64_t e : diff.value().remote_only) recovered.insert(e);
  EXPECT_EQ(std::vector<uint64_t>(recovered.begin(), recovered.end()), alice);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CharPolySweep,
    ::testing::Values(CpCase{10, 1, 0, 1}, CpCase{10, 0, 1, 1},
                      CpCase{10, 1, 1, 2}, CpCase{50, 3, 2, 5},
                      CpCase{100, 5, 5, 10}, CpCase{100, 5, 5, 16},
                      CpCase{20, 10, 0, 12}, CpCase{0, 4, 4, 8},
                      CpCase{200, 12, 9, 21}, CpCase{30, 0, 0, 4}));

}  // namespace
}  // namespace setrec
