// Fuzz round-trip tests for the sparse wire codec: sparse-encode, decode,
// and compare cell-for-cell against the in-memory table (via the fixed
// serialization, which lists every cell) for randomized tables across the
// shapes the protocols actually send — empty, singleton, lightly loaded,
// saturated, and wide blob keys. Also covers delta frames against a
// lineage parent, the SerializeWith/DeserializeWith codec dispatch, and
// scalar/SIMD lane-XOR backend equivalence.
//
// Runs under the `fast` ctest label, so the asan preset exercises every
// decode path with sanitizers on.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "hashing/random.h"
#include "iblt/iblt.h"
#include "util/serialization.h"

namespace setrec {
namespace {

std::vector<uint8_t> RandomKey(size_t width, Rng* rng) {
  std::vector<uint8_t> key(width);
  for (auto& b : key) b = static_cast<uint8_t>(rng->NextU64());
  return key;
}

// Cell-for-cell equality: the fixed serialization lists count, check, and
// every key byte for every cell, so byte equality there is exactly "the
// decoder rebuilt the table the encoder had".
std::vector<uint8_t> FixedBytes(const Iblt& table) {
  ByteWriter writer;
  table.SerializeFixed(&writer);
  return writer.bytes();
}

Iblt SparseRoundTrip(const Iblt& table, const IbltConfig& config) {
  ByteWriter writer;
  table.SerializeSparse(&writer);
  ByteReader reader(writer.bytes());
  Result<Iblt> restored = Iblt::DeserializeSparse(&reader, config);
  EXPECT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(reader.empty()) << "frame must consume exactly its bytes";
  return std::move(restored).value();
}

TEST(IbltSparseCodecTest, FuzzRoundTripMatchesDenseCellForCell) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    IbltConfig config;
    config.cells = 8 + rng.NextU64() % 200;
    config.num_hashes = 4;
    config.key_width = 8 + 8 * (rng.NextU64() % 9);  // 8..72: wide blobs too.
    config.seed = rng.NextU64();
    Iblt table(config);
    // Load levels from empty through saturated (inserts far beyond cells).
    const size_t load = rng.NextU64() % (2 * config.cells);
    for (size_t i = 0; i < load; ++i) {
      std::vector<uint8_t> key = RandomKey(config.key_width, &rng);
      switch (rng.NextU64() % 3) {
        case 0:
          table.Insert(key);
          break;
        case 1:
          table.Erase(key);
          break;
        default:  // |count| > 1 cells, exercising the escape list.
          table.Insert(key);
          table.Insert(key);
          break;
      }
    }

    Iblt restored = SparseRoundTrip(table, config);
    ASSERT_EQ(FixedBytes(restored), FixedBytes(table))
        << "trial=" << trial << " cells=" << config.cells
        << " width=" << config.key_width << " load=" << load;

    // The sparse frame never expands: mode-0 fallback bounds it at the
    // dense stream plus the one mode byte.
    ByteWriter dense, sparse;
    table.Serialize(&dense);
    table.SerializeSparse(&sparse);
    EXPECT_LE(sparse.bytes().size(), dense.bytes().size() + 1);
  }
}

TEST(IbltSparseCodecTest, EmptyAndSingletonTables) {
  IbltConfig config = IbltConfig::ForDifference(16, 7, /*key_width=*/24);
  Iblt empty(config);
  EXPECT_EQ(FixedBytes(SparseRoundTrip(empty, config)), FixedBytes(empty));

  Iblt one(config);
  Rng rng(7);
  one.Insert(RandomKey(24, &rng));
  EXPECT_EQ(FixedBytes(SparseRoundTrip(one, config)), FixedBytes(one));
  // A singleton in a mostly-empty table is the codec's best case; it must
  // come in well under the dense stream.
  ByteWriter dense, sparse;
  one.Serialize(&dense);
  one.SerializeSparse(&sparse);
  EXPECT_LT(sparse.bytes().size(), dense.bytes().size() / 2);
}

TEST(IbltSparseCodecTest, DeltaRoundTripAgainstLineageParent) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    IbltConfig config;
    config.cells = 16 + rng.NextU64() % 100;
    config.num_hashes = 4;
    config.key_width = 8 + 8 * (rng.NextU64() % 5);
    config.seed = rng.NextU64();
    Iblt parent(config);
    for (size_t i = 0; i < config.cells / 2; ++i) {
      parent.Insert(RandomKey(config.key_width, &rng));
    }
    // The doubling protocols' shape: the retry table is the parent plus a
    // few set changes (and some removals that zero cells back out).
    Iblt child = parent;
    const size_t edits = 1 + rng.NextU64() % 8;
    for (size_t i = 0; i < edits; ++i) {
      std::vector<uint8_t> key = RandomKey(config.key_width, &rng);
      if (rng.NextU64() % 2) {
        child.Insert(key);
      } else {
        child.Erase(key);
      }
    }

    ByteWriter writer;
    child.SerializeDelta(parent, &writer);
    ByteReader reader(writer.bytes());
    Result<Iblt> restored =
        Iblt::DeserializeSparse(&reader, config, TableLineage{&parent});
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_TRUE(reader.empty());
    ASSERT_EQ(FixedBytes(restored.value()), FixedBytes(child))
        << "trial=" << trial;
  }
}

TEST(IbltSparseCodecTest, UnchangedTableDeltaIsJustTheBitmap) {
  IbltConfig config = IbltConfig::ForDifference(32, 13, /*key_width=*/16);
  Iblt table(config);
  Rng rng(13);
  for (int i = 0; i < 32; ++i) table.Insert(RandomKey(16, &rng));

  ByteWriter writer;
  table.SerializeDelta(table, &writer);
  // Mode byte + all-zero changed-cell bitmap, nothing else.
  EXPECT_EQ(writer.bytes().size(), 1 + (config.PaddedCells() + 7) / 8);
  ByteReader reader(writer.bytes());
  Result<Iblt> restored =
      Iblt::DeserializeSparse(&reader, config, TableLineage{&table});
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(reader.empty());
  EXPECT_EQ(FixedBytes(restored.value()), FixedBytes(table));
}

TEST(IbltSparseCodecTest, SerializeWithDispatchesOnCodecAndLineage) {
  IbltConfig config = IbltConfig::ForDifference(16, 21, /*key_width=*/8);
  Iblt parent(config), child(config);
  Rng rng(21);
  for (int i = 0; i < 10; ++i) parent.Insert(RandomKey(8, &rng));
  child = parent;
  child.Insert(RandomKey(8, &rng));

  // kDense ignores lineage and emits the legacy stream byte for byte.
  ByteWriter legacy, dense;
  child.Serialize(&legacy);
  child.SerializeWith(WireCodec::kDense, &dense, TableLineage{&parent});
  EXPECT_EQ(dense.bytes(), legacy.bytes());

  // kSparse without covering lineage emits a full sparse/raw frame...
  ByteWriter sparse;
  child.SerializeWith(WireCodec::kSparse, &sparse);
  ASSERT_FALSE(sparse.bytes().empty());
  EXPECT_NE(sparse.bytes()[0], 2);

  // ...and with covering lineage, a delta frame the other half decodes via
  // the same dispatch.
  ByteWriter delta;
  child.SerializeWith(WireCodec::kSparse, &delta, TableLineage{&parent});
  ASSERT_FALSE(delta.bytes().empty());
  EXPECT_EQ(delta.bytes()[0], 2);
  EXPECT_LT(delta.bytes().size(), sparse.bytes().size());
  ByteReader reader(delta.bytes());
  Result<Iblt> restored = Iblt::DeserializeWith(
      WireCodec::kSparse, &reader, config, TableLineage{&parent});
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(FixedBytes(restored.value()), FixedBytes(child));

  // A config mismatch on the sender side falls back to a non-delta frame
  // rather than emitting an undecodable delta.
  IbltConfig grown = config;
  grown.cells *= 2;
  Iblt regrown(grown);
  regrown.Insert(RandomKey(8, &rng));
  ByteWriter fallback;
  regrown.SerializeWith(WireCodec::kSparse, &fallback, TableLineage{&parent});
  ASSERT_FALSE(fallback.bytes().empty());
  EXPECT_NE(fallback.bytes()[0], 2);
}

TEST(IbltSparseCodecTest, ScalarAndSimdBackendsBuildIdenticalTables) {
  // The codec reads key lanes the XOR backends wrote; whatever backend the
  // dispatcher picked (avx512 > avx2 > scalar) must produce tables — and
  // therefore frames — identical to forced-scalar.
  auto build = [] {
    IbltConfig config = IbltConfig::ForDifference(64, 31, /*key_width=*/36);
    Iblt table(config);
    Rng rng(31);
    for (int i = 0; i < 64; ++i) table.Insert(RandomKey(36, &rng));
    for (int i = 0; i < 32; ++i) table.Erase(RandomKey(36, &rng));
    ByteWriter writer;
    table.SerializeSparse(&writer);
    return writer.bytes();
  };
  std::vector<uint8_t> dispatched = build();
  Iblt::ForceScalarLaneXorForTest(true);
  EXPECT_STREQ(Iblt::LaneXorBackend(), "scalar");
  std::vector<uint8_t> scalar = build();
  Iblt::ForceScalarLaneXorForTest(false);
  EXPECT_EQ(dispatched, scalar);
}

}  // namespace
}  // namespace setrec
