#include "charpoly/gf.h"

#include <gtest/gtest.h>

#include "hashing/random.h"

namespace setrec {
namespace {

TEST(GfTest, AddWraps) {
  EXPECT_EQ(gf::Add(gf::kP - 1, 1), 0u);
  EXPECT_EQ(gf::Add(gf::kP - 1, 2), 1u);
  EXPECT_EQ(gf::Add(0, 0), 0u);
}

TEST(GfTest, SubWraps) {
  EXPECT_EQ(gf::Sub(0, 1), gf::kP - 1);
  EXPECT_EQ(gf::Sub(5, 5), 0u);
}

TEST(GfTest, NegInverse) {
  EXPECT_EQ(gf::Neg(0), 0u);
  EXPECT_EQ(gf::Add(7, gf::Neg(7)), 0u);
  EXPECT_EQ(gf::Add(gf::kP - 1, gf::Neg(gf::kP - 1)), 0u);
}

TEST(GfTest, MulIdentityAndZero) {
  EXPECT_EQ(gf::Mul(1, 12345), 12345u);
  EXPECT_EQ(gf::Mul(0, 12345), 0u);
}

TEST(GfTest, MulLargeOperands) {
  // (p-1)*(p-1) = p^2 - 2p + 1 ≡ 1 (mod p).
  EXPECT_EQ(gf::Mul(gf::kP - 1, gf::kP - 1), 1u);
}

TEST(GfTest, PowMatchesRepeatedMul) {
  uint64_t base = 123456789;
  uint64_t acc = 1;
  for (int e = 0; e <= 16; ++e) {
    EXPECT_EQ(gf::Pow(base, static_cast<uint64_t>(e)), acc) << "e=" << e;
    acc = gf::Mul(acc, base);
  }
}

TEST(GfTest, FermatLittleTheorem) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    uint64_t a = rng.NextU64() % gf::kP;
    if (a == 0) continue;
    EXPECT_EQ(gf::Pow(a, gf::kP - 1), 1u);
  }
}

TEST(GfTest, InvIsInverse) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    uint64_t a = rng.NextU64() % gf::kP;
    if (a == 0) continue;
    EXPECT_EQ(gf::Mul(a, gf::Inv(a)), 1u);
  }
}

// Field axioms on random samples.
class GfAxioms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GfAxioms, RingLaws) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.NextU64() % gf::kP;
    uint64_t b = rng.NextU64() % gf::kP;
    uint64_t c = rng.NextU64() % gf::kP;
    EXPECT_EQ(gf::Add(a, b), gf::Add(b, a));
    EXPECT_EQ(gf::Mul(a, b), gf::Mul(b, a));
    EXPECT_EQ(gf::Add(gf::Add(a, b), c), gf::Add(a, gf::Add(b, c)));
    EXPECT_EQ(gf::Mul(gf::Mul(a, b), c), gf::Mul(a, gf::Mul(b, c)));
    EXPECT_EQ(gf::Mul(a, gf::Add(b, c)),
              gf::Add(gf::Mul(a, b), gf::Mul(a, c)));
    EXPECT_EQ(gf::Sub(a, b), gf::Add(a, gf::Neg(b)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GfAxioms, ::testing::Values(1, 2, 3, 4, 5));

TEST(GfTest, ElementRangeConstant) {
  EXPECT_LT(gf::kMaxElement, 1ull << 60);
  EXPECT_LT(gf::kMaxElement, gf::kP);
}

}  // namespace
}  // namespace setrec
