// Coroutine-frame pooling: warm protocol runs must create no fresh frames
// (per-thread freelist reuse, CoroFramePool in core/task.h), and a warm
// tiny coroutine must not touch the global allocator at all — asserted
// with the same operator-new counter that backs the decode-allocation
// guarantees (bench/alloc_counter.h; include from exactly one TU).

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "bench/alloc_counter.h"
#include "core/task.h"
#include "core/workload.h"
#include "service/sync_service.h"

namespace setrec {
namespace {

Task<int> Tiny(int x) { co_return x + 1; }

TEST(CoroFramePool, WarmTinyCoroutineIsAllocationFree) {
  // Warm the size class.
  EXPECT_EQ(RunSync(Tiny(1)), 2);
  size_t allocs = CountAllocs([] {
    for (int i = 0; i < 64; ++i) {
      if (RunSync(Tiny(i)) != i + 1) std::abort();
    }
  });
  EXPECT_EQ(allocs, 0u)
      << "warm coroutine frames must come from the freelist";
}

TEST(CoroFramePool, FramesRecycleAcrossProtocolRuns) {
  SsrWorkloadSpec spec;
  spec.num_children = 12;
  spec.child_size = 8;
  spec.changes = 3;
  spec.seed = 71;
  SsrWorkload w = MakeSsrWorkload(spec);
  SsrParams params;
  params.max_child_size = spec.child_size + spec.changes + 2;
  params.seed = 710;

  auto run_once = [&](SsrProtocolKind kind) {
    std::unique_ptr<SetsOfSetsProtocol> protocol =
        MakeSsrProtocol(kind, params);
    Channel channel;
    Result<SsrOutcome> outcome =
        protocol->Reconcile(w.alice, w.bob, w.applied_changes, &channel);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  };

  const SsrProtocolKind kinds[] = {
      SsrProtocolKind::kNaive, SsrProtocolKind::kIblt2,
      SsrProtocolKind::kCascade, SsrProtocolKind::kMultiRound};
  // Cold pass populates the freelists with every frame shape the four
  // protocols use.
  for (SsrProtocolKind kind : kinds) run_once(kind);
  const CoroFramePool::Stats cold = CoroFramePool::ThreadStats();
  EXPECT_GT(cold.fresh, 0u);

  // Warm passes must reuse every frame.
  for (int round = 0; round < 3; ++round) {
    for (SsrProtocolKind kind : kinds) run_once(kind);
  }
  const CoroFramePool::Stats warm = CoroFramePool::ThreadStats();
  EXPECT_EQ(warm.fresh, cold.fresh)
      << "warm protocol runs allocated fresh coroutine frames";
  EXPECT_EQ(warm.oversize, cold.oversize);
  EXPECT_GT(warm.reuses, cold.reuses);
}

TEST(CoroFramePool, WarmServiceSessionsReuseFrames) {
  SsrWorkloadSpec spec;
  spec.num_children = 12;
  spec.child_size = 8;
  spec.changes = 2;
  spec.seed = 72;
  SsrWorkload w = MakeSsrWorkload(spec);
  SsrParams params;
  params.max_child_size = spec.child_size + spec.changes + 2;
  params.seed = 720;

  SyncService service;
  auto alice = std::make_shared<SetOfSets>(w.alice);
  auto bob = std::make_shared<SetOfSets>(w.bob);
  auto submit = [&] {
    for (int i = 0; i < 4; ++i) {
      SessionSpec session;
      session.protocol = static_cast<SsrProtocolKind>(i);
      session.params = params;
      session.alice = alice;
      session.bob = bob;
      session.known_d = w.applied_changes;
      service.Submit(std::move(session));
    }
    service.RunToCompletion();
    for (const SessionResult& r : service.TakeResults()) {
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    }
  };

  submit();  // Cold: allocates each protocol's frame shapes once.
  const CoroFramePool::Stats cold = CoroFramePool::ThreadStats();
  for (int round = 0; round < 3; ++round) submit();
  const CoroFramePool::Stats warm = CoroFramePool::ThreadStats();
  EXPECT_EQ(warm.fresh, cold.fresh)
      << "warm service sessions allocated fresh coroutine frames";
  EXPECT_GT(warm.reuses, cold.reuses);
}

}  // namespace
}  // namespace setrec
