#include "charpoly/root_finding.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "charpoly/gf.h"
#include "charpoly/poly.h"
#include "charpoly/rational_interpolation.h"
#include "hashing/random.h"

namespace setrec {
namespace {

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(FindRootsTest, Linear) {
  Poly p = Poly::FromRoots({42});
  Result<std::vector<uint64_t>> roots = FindRoots(p, 1);
  ASSERT_TRUE(roots.ok());
  EXPECT_EQ(roots.value(), (std::vector<uint64_t>{42}));
}

TEST(FindRootsTest, Quadratic) {
  Poly p = Poly::FromRoots({7, 9});
  Result<std::vector<uint64_t>> roots = FindRoots(p, 2);
  ASSERT_TRUE(roots.ok());
  EXPECT_EQ(Sorted(roots.value()), (std::vector<uint64_t>{7, 9}));
}

TEST(FindRootsTest, ConstantHasNoRoots) {
  Result<std::vector<uint64_t>> roots = FindRoots(Poly::Constant(5), 3);
  ASSERT_TRUE(roots.ok());
  EXPECT_TRUE(roots.value().empty());
}

TEST(FindRootsTest, ZeroPolynomialRejected) {
  Result<std::vector<uint64_t>> roots = FindRoots(Poly(), 4);
  EXPECT_FALSE(roots.ok());
}

TEST(FindRootsTest, RepeatedRootRejected) {
  // (x-3)^2 is not squarefree: the certificate must fail.
  Poly p = Poly::FromRoots({3, 3});
  Result<std::vector<uint64_t>> roots = FindRoots(p, 5);
  EXPECT_FALSE(roots.ok());
  EXPECT_EQ(roots.status().code(), StatusCode::kVerificationFailure);
}

TEST(FindRootsTest, IrreducibleFactorRejected) {
  // x^2 + 1 has no roots iff -1 is a non-residue; p ≡ 3 (mod 4) so it is.
  Poly p({1, 0, 1});
  Result<std::vector<uint64_t>> roots = FindRoots(p, 6);
  EXPECT_FALSE(roots.ok());
}

TEST(FindRootsTest, NonMonicInputAccepted) {
  Poly p = Poly::FromRoots({100, 200}).MulScalar(7);
  Result<std::vector<uint64_t>> roots = FindRoots(p, 7);
  ASSERT_TRUE(roots.ok());
  EXPECT_EQ(Sorted(roots.value()), (std::vector<uint64_t>{100, 200}));
}

class FindRootsSweep : public ::testing::TestWithParam<int> {};

TEST_P(FindRootsSweep, RandomRootSets) {
  const int degree = GetParam();
  Rng rng(static_cast<uint64_t>(degree) * 17 + 1);
  std::set<uint64_t> root_set;
  while (root_set.size() < static_cast<size_t>(degree)) {
    root_set.insert(rng.NextU64() % (1ull << 60));
  }
  std::vector<uint64_t> roots(root_set.begin(), root_set.end());
  Poly p = Poly::FromRoots(roots);
  Result<std::vector<uint64_t>> found =
      FindRoots(p, static_cast<uint64_t>(degree));
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(Sorted(found.value()), roots);
}

INSTANTIATE_TEST_SUITE_P(Degrees, FindRootsSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 21, 34, 55));

TEST(SolveLinearSystemTest, TwoByTwo) {
  // x + y = 3, x - y = 1 -> x = 2, y = 1.
  std::vector<std::vector<uint64_t>> a = {{1, 1}, {1, gf::kP - 1}};
  std::vector<uint64_t> b = {3, 1};
  Result<std::vector<uint64_t>> x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x.value(), (std::vector<uint64_t>{2, 1}));
}

TEST(SolveLinearSystemTest, SingularConsistentSolvable) {
  // Duplicate equation: infinitely many solutions; any one is acceptable.
  std::vector<std::vector<uint64_t>> a = {{1, 1}, {2, 2}};
  std::vector<uint64_t> b = {3, 6};
  Result<std::vector<uint64_t>> x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(gf::Add(x.value()[0], x.value()[1]), 3u);
}

TEST(SolveLinearSystemTest, InconsistentRejected) {
  std::vector<std::vector<uint64_t>> a = {{1, 1}, {2, 2}};
  std::vector<uint64_t> b = {3, 7};
  Result<std::vector<uint64_t>> x = SolveLinearSystem(a, b);
  EXPECT_FALSE(x.ok());
}

TEST(InterpolateRationalTest, ExactDegrees) {
  // P = (x-5)(x-6), Q = (x-9). Sample P/Q at points away from roots.
  Poly p = Poly::FromRoots({5, 6});
  Poly q = Poly::FromRoots({9});
  std::vector<uint64_t> points, values;
  for (uint64_t i = 0; i < 3; ++i) {
    uint64_t z = 1000 + i;
    points.push_back(z);
    values.push_back(gf::Mul(p.Eval(z), gf::Inv(q.Eval(z))));
  }
  Result<RationalFunction> rf = InterpolateRational(points, values, 2, 1);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf.value().numerator, p);
  EXPECT_EQ(rf.value().denominator, q);
}

TEST(InterpolateRationalTest, OverestimatedDegreesReduced) {
  // True degrees (1, 0); ask for (3, 2): gcd stripping must recover.
  Poly p = Poly::FromRoots({17});
  std::vector<uint64_t> points, values;
  for (uint64_t i = 0; i < 5; ++i) {
    uint64_t z = 2000 + i;
    points.push_back(z);
    values.push_back(p.Eval(z));
  }
  Result<RationalFunction> rf = InterpolateRational(points, values, 3, 2);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf.value().numerator, p);
  EXPECT_EQ(rf.value().denominator, Poly::Constant(1));
}

TEST(InterpolateRationalTest, NotEnoughPointsRejected) {
  std::vector<uint64_t> points = {1, 2};
  std::vector<uint64_t> values = {1, 1};
  Result<RationalFunction> rf = InterpolateRational(points, values, 2, 1);
  EXPECT_FALSE(rf.ok());
}

TEST(InterpolateRationalTest, BothConstant) {
  std::vector<uint64_t> points, values;
  Result<RationalFunction> rf = InterpolateRational(points, values, 0, 0);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf.value().numerator, Poly::Constant(1));
  EXPECT_EQ(rf.value().denominator, Poly::Constant(1));
}

}  // namespace
}  // namespace setrec
