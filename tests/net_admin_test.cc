// Admin-frame client hardening and the distributed-tracing round trip:
// QueryStatsOverFd / QueryTracesOverFd must fail closed against a
// misbehaving server (unknown exposition versions, wrong reply labels,
// oversized replies, early EOF), TRACE? must serve the completed-trace
// store through a real pump, and a traced session over real TCP must
// merge into one client+server timeline.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <iomanip>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "net/net_pump.h"
#include "net/stream_party.h"
#include "net/wire.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "obs/trace_text.h"
#include "service/sync_service.h"
#include "transport/endpoint.h"

namespace setrec {
namespace {

// The oversized-reply test makes the fake server write into a socket the
// client has already abandoned; that is EPIPE, not a crash.
const int kIgnoreSigpipe = [] {
  ::signal(SIGPIPE, SIG_IGN);
  return 0;
}();

// Plays one exchange of the admin protocol as the SERVER: consumes the
// client's query frame, answers with `reply_label` + `payload`, closes.
void FakeAdminServer(int fd, const std::string& reply_label,
                     std::string payload, bool send_reply = true) {
  FrameDecoder decoder;
  std::vector<uint8_t> buf(4096);
  Channel::Message query;
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n <= 0) break;
    decoder.Feed(buf.data(), static_cast<size_t>(n));
    if (decoder.failed() || decoder.Next(&query)) break;
  }
  if (send_reply) {
    Channel::Message reply;
    reply.from = Party::kAlice;
    reply.label = reply_label;
    reply.payload.assign(payload.begin(), payload.end());
    (void)WriteFrameToFd(fd, reply);  // EPIPE is fine: client may bail.
  }
  ::close(fd);
}

Result<std::string> QueryFakeServer(const std::string& reply_label,
                                    std::string payload,
                                    bool send_reply = true) {
  int sv[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::thread server([&] {
    FakeAdminServer(sv[0], reply_label, std::move(payload), send_reply);
  });
  Result<std::string> got = QueryStatsOverFd(sv[1]);
  ::close(sv[1]);
  server.join();
  return got;
}

TEST(AdminClientHardening, AcceptsKnownMetricsVersions) {
  Result<std::string> v1 =
      QueryFakeServer(kStatReplyLabel, "# setrec-metrics v1\ncounter x{} 1\n");
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_NE(v1.value().find("counter x{} 1"), std::string::npos);

  Result<std::string> v2 = QueryFakeServer(
      kStatReplyLabel, "# setrec-metrics v2\nrate y{} 1.000\n");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
}

TEST(AdminClientHardening, UnknownMetricsVersionFailsClosed) {
  // A v3 exposition may carry line types this client would misread: the
  // helper must refuse it rather than return half-parsed text.
  EXPECT_FALSE(
      QueryFakeServer(kStatReplyLabel, "# setrec-metrics v3\n").ok());
  EXPECT_FALSE(QueryFakeServer(kStatReplyLabel, "not an exposition").ok());
  EXPECT_FALSE(QueryFakeServer(kStatReplyLabel, "").ok());
}

TEST(AdminClientHardening, WrongReplyLabelFailsClosed) {
  EXPECT_FALSE(
      QueryFakeServer("NOPE", "# setrec-metrics v2\n").ok());
  // A protocol frame where the admin reply should be is just as wrong.
  EXPECT_FALSE(
      QueryFakeServer("T1", "# setrec-metrics v2\n").ok());
}

TEST(AdminClientHardening, EarlyCloseFailsClosed) {
  Result<std::string> got =
      QueryFakeServer(kStatReplyLabel, "", /*send_reply=*/false);
  EXPECT_FALSE(got.ok());
}

TEST(AdminClientHardening, OversizedReplyFailsClosed) {
  // 5 MB of exposition: over the 4 MB admin ceiling. The decoder latches
  // before buffering it all, so a hostile server cannot balloon memory.
  std::string huge = "# setrec-metrics v2\n";
  huge.resize(5u << 20, 'x');
  EXPECT_FALSE(QueryFakeServer(kStatReplyLabel, std::move(huge)).ok());
}

TEST(AdminClientHardening, TraceVersionValidated) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::thread server([&] {
    FakeAdminServer(sv[0], kTraceReplyLabel, "# setrec-trace v9\n");
  });
  EXPECT_FALSE(QueryTracesOverFd(sv[1]).ok());
  ::close(sv[1]);
  server.join();
}

struct Fixture {
  SsrParams params;
  SetOfSets alice;
  SetOfSets bob;
  std::optional<size_t> known_d;
};

Fixture MakeFixture() {
  SsrWorkloadSpec spec;
  spec.num_children = 16;
  spec.child_size = 8;
  spec.changes = 3;
  spec.seed = 6620;
  SsrWorkload w = MakeSsrWorkload(spec);
  Fixture f;
  f.params.max_child_size = spec.child_size + spec.changes + 2;
  f.params.max_children = spec.num_children + spec.changes;
  f.params.seed = spec.seed + 9;
  f.alice = std::move(w.alice);
  f.bob = std::move(w.bob);
  f.known_d = w.applied_changes;
  return f;
}

TEST(TraceQuery, ServesCompletedTracesThroughThePump) {
  const Fixture f = MakeFixture();
  SyncService service;
  const uint64_t set_id =
      service.RegisterSharedSet(std::make_shared<SetOfSets>(f.alice));
  NetPump pump(&service);
  int admin[2];
  int session[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, admin), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, session), 0);
  ASSERT_TRUE(pump.AdoptConnection(admin[0]).ok());
  ASSERT_TRUE(pump.AdoptConnection(session[0]).ok());

  constexpr uint64_t kTraceId = 0xabcdef12;
  Result<std::string> before = Status::Ok();
  Result<std::string> after = Status::Ok();
  Result<SsrOutcome> outcome = Status::Ok();
  std::thread client_thread([&] {
    // Pre-hello, pre-session: an empty trace store is just the version
    // line — the admin path needs no session state.
    before = QueryTracesOverFd(admin[1]);
    HelloSpec hello;
    hello.protocol = SsrProtocolKind::kIblt2;
    hello.set_id = set_id;
    hello.params = f.params;
    hello.known_d = f.known_d;
    hello.trace_id = kTraceId;
    if (Status s = SendHello(session[1], hello); s.ok()) {
      Channel channel;
      outcome = RunBobHalfOverFd(*MakeSsrProtocol(hello.protocol, f.params),
                                 f.bob, f.known_d, session[1], &channel);
    }
    ::close(session[1]);
    // The exposition is live: poll until the pump digests the finalize.
    for (int i = 0; i < 100; ++i) {
      after = QueryTracesOverFd(admin[1]);
      if (!after.ok() ||
          after.value().find("id=00000000abcdef12") != std::string::npos) {
        break;
      }
    }
    ::close(admin[1]);
  });
  pump.DrainConnections();
  client_thread.join();

  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before.value(),
            std::string(obs::kTraceTextVersionLine) + "\n");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  std::vector<obs::ParsedTrace> traces;
  ASSERT_TRUE(obs::ParseTraceExposition(after.value(), &traces));
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].trace_id, kTraceId);
  EXPECT_EQ(traces[0].side, "server");
  EXPECT_FALSE(traces[0].events.empty());
  EXPECT_EQ(pump.stats().protocol_errors, 0u);
  EXPECT_GE(pump.SnapshotPumpMetrics().trace_requests, 2u);
}

TEST(TraceQuery, TracedTcpSessionMergesIntoOneTimeline) {
  const Fixture f = MakeFixture();
  SyncService service;
  const uint64_t set_id =
      service.RegisterSharedSet(std::make_shared<SetOfSets>(f.alice));
  NetPump pump(&service);
  Result<uint16_t> port = pump.ListenTcp(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  // Preemption on a loaded one-core box (TSan especially) opens real
  // wall-clock gaps no span covers, so a single run can land under the
  // coverage bar with nothing wrong. Retry a fresh traced session like
  // setrec_stat --probe does; the strict 90% gate lives in the smoke
  // lane (scripts/check.sh) where the box is quiet.
  obs::MergedTimeline merged;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const uint64_t trace_id = 0x5eed1234u + static_cast<uint64_t>(attempt);
    std::ostringstream id_text;
    id_text << "id=" << std::hex << std::setw(16) << std::setfill('0')
            << trace_id;
    obs::SessionTracer tracer;
    tracer.EnableCapture(1024);
    Result<std::string> server_text = Status::Ok();
    Result<SsrOutcome> outcome = Status::Ok();
    std::atomic<bool> client_done{false};
    std::thread client_thread([&] {
      // The client half, instrumented like setrec_stat --probe.
      const uint64_t start_ns = obs::NowNanos();
      tracer.Record(trace_id, obs::TracePhase::kSession, true, start_ns,
                    trace_id);
      Result<int> fd = ConnectTcp("127.0.0.1", port.value());
      if (!fd.ok()) {
        outcome = fd.status();
        client_done.store(true);
        return;
      }
      HelloSpec hello;
      hello.protocol = SsrProtocolKind::kCascade;
      hello.set_id = set_id;
      hello.params = f.params;
      hello.known_d = f.known_d;
      hello.trace_id = trace_id;
      tracer.Record(trace_id, obs::TracePhase::kHello, true, obs::NowNanos(),
                    trace_id);
      Status hello_sent = SendHello(fd.value(), hello);
      tracer.Record(trace_id, obs::TracePhase::kHello, false, obs::NowNanos(),
                    trace_id);
      if (!hello_sent.ok()) {
        outcome = hello_sent;
        ::close(fd.value());
        client_done.store(true);
        return;
      }
      Channel channel;
      outcome = RunBobHalfOverFd(*MakeSsrProtocol(hello.protocol, f.params),
                                 f.bob, f.known_d, fd.value(), &channel,
                                 &tracer, trace_id);
      const uint64_t end_ns = obs::NowNanos();
      tracer.Record(trace_id, obs::TracePhase::kSession, false, end_ns,
                    trace_id);
      tracer.OnSessionEnd(trace_id, trace_id, end_ns - start_ns, "client",
                          nullptr);
      ::close(fd.value());
      // Fetch the server half over a second connection; poll for finalize.
      for (int i = 0; i < 100; ++i) {
        Result<int> admin_fd = ConnectTcp("127.0.0.1", port.value());
        if (!admin_fd.ok()) {
          server_text = admin_fd.status();
          break;
        }
        server_text = QueryTracesOverFd(admin_fd.value());
        ::close(admin_fd.value());
        if (!server_text.ok() ||
            server_text.value().find(id_text.str()) != std::string::npos) {
          break;
        }
      }
      client_done.store(true);
    });
    // Serve until the client is done: the connection set is transiently
    // empty between the session fd closing and the admin reconnects, so
    // DrainConnections alone would return too early.
    while (!client_done.load()) {
      pump.PumpOnce(10);
    }
    pump.DrainConnections();
    client_thread.join();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(server_text.ok()) << server_text.status().ToString();

    // Round-trip the client half through the same text codec, then merge.
    std::vector<obs::ParsedTrace> client_traces;
    ASSERT_TRUE(obs::ParseTraceExposition(
        obs::FormatTraceExposition(tracer.SnapshotCompleted(), "client"),
        &client_traces));
    ASSERT_EQ(client_traces.size(), 1u);
    std::vector<obs::ParsedTrace> server_traces;
    ASSERT_TRUE(
        obs::ParseTraceExposition(server_text.value(), &server_traces));
    const obs::ParsedTrace* server = nullptr;
    for (const obs::ParsedTrace& t : server_traces) {
      if (t.trace_id == trace_id) server = &t;
    }
    ASSERT_NE(server, nullptr) << server_text.value();

    merged = obs::MergeTraceTimelines(client_traces[0], server);
    if (merged.has_server && merged.coverage > 0.5) break;
  }
  // Both halves interleave on one axis; an attempt clearing the bar
  // proves the propagation + clock-rebase pipeline end to end.
  EXPECT_TRUE(merged.has_server);
  EXPECT_GT(merged.coverage, 0.5) << merged.text;
  EXPECT_NE(merged.text.find("client > hello"), std::string::npos);
  EXPECT_NE(merged.text.find("server > session"), std::string::npos);
  EXPECT_NE(merged.text.find("client < session"), std::string::npos);
}

}  // namespace
}  // namespace setrec
