#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "estimator/l0_estimator.h"
#include "estimator/strata_estimator.h"
#include "hashing/random.h"
#include "util/serialization.h"

namespace setrec {
namespace {

// Builds two estimators (Alice side 1, Bob side 2) over sets with `shared`
// common elements and `diff` one-sided extras, merges, and returns the
// estimate. Template works for both estimator types.
template <typename Estimator>
uint64_t EstimateDifference(const typename Estimator::Params& params,
                            size_t shared, size_t diff, uint64_t seed) {
  Rng rng(seed);
  Estimator alice(params), bob(params);
  std::set<uint64_t> used;
  for (size_t i = 0; i < shared; ++i) {
    uint64_t e = rng.NextU64();
    alice.Update(e, 1);
    bob.Update(e, 2);
  }
  for (size_t i = 0; i < diff; ++i) {
    uint64_t e = rng.NextU64();
    if (i % 2 == 0) {
      alice.Update(e, 1);
    } else {
      bob.Update(e, 2);
    }
  }
  EXPECT_TRUE(alice.Merge(bob).ok());
  return alice.Estimate();
}

// UpdateBatch must be exactly equivalent to n single-element Updates, for
// both estimator types and both sides (compared via serialized bytes).
template <typename Estimator>
void ExpectBatchMatchesPerElement(const typename Estimator::Params& params) {
  for (int side : {1, 2}) {
    for (size_t n : {0ul, 1ul, 7ul, 500ul}) {
      Rng rng(n * 3 + static_cast<size_t>(side));
      std::vector<uint64_t> elements(n);
      for (auto& e : elements) e = rng.NextU64();

      Estimator per_element(params), batched(params);
      for (uint64_t e : elements) per_element.Update(e, side);
      batched.UpdateBatch(elements.data(), elements.size(), side);

      ByteWriter a, b;
      per_element.Serialize(&a);
      batched.Serialize(&b);
      EXPECT_EQ(a.bytes(), b.bytes()) << "side=" << side << " n=" << n;
    }
  }
}

TEST(L0EstimatorTest, ZeroDifferenceIsZero) {
  L0Estimator::Params params;
  params.seed = 1;
  EXPECT_EQ(EstimateDifference<L0Estimator>(params, 5000, 0, 11), 0u);
}

TEST(L0EstimatorTest, SmallDifferencesNearExact) {
  L0Estimator::Params params;
  params.seed = 2;
  for (size_t d : {1u, 2u, 3u, 5u, 8u}) {
    uint64_t est = EstimateDifference<L0Estimator>(params, 2000, d, 100 + d);
    EXPECT_GE(est, d / 2) << d;
    EXPECT_LE(est, 2 * d + 2) << d;
  }
}

TEST(L0EstimatorTest, SerializationRoundTrip) {
  L0Estimator::Params params;
  params.seed = 3;
  L0Estimator est(params);
  for (uint64_t i = 0; i < 100; ++i) est.Update(i, 1);
  ByteWriter writer;
  est.Serialize(&writer);
  EXPECT_EQ(writer.size(), est.SerializedSize());
  ByteReader reader(writer.bytes());
  Result<L0Estimator> restored = L0Estimator::Deserialize(&reader, params);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().Estimate(), est.Estimate());
}

TEST(L0EstimatorTest, MergeMismatchedParamsRejected) {
  L0Estimator::Params a, b;
  a.seed = 1;
  b.seed = 2;
  L0Estimator ea(a), eb(b);
  EXPECT_FALSE(ea.Merge(eb).ok());
}

TEST(L0EstimatorTest, UpdateCancelsAcrossSides) {
  // x on side 1 and x on side 2 contribute +1 and -1 to the same bucket.
  L0Estimator::Params params;
  params.seed = 4;
  L0Estimator est(params);
  for (uint64_t i = 0; i < 500; ++i) {
    est.Update(i, 1);
    est.Update(i, 2);
  }
  EXPECT_EQ(est.Estimate(), 0u);
}

TEST(L0EstimatorTest, MergeIsWordParallelEquivalent) {
  // Merging split streams equals one combined stream.
  L0Estimator::Params params;
  params.seed = 5;
  L0Estimator combined(params), part1(params), part2(params);
  Rng rng(55);
  for (int i = 0; i < 300; ++i) {
    uint64_t e = rng.NextU64();
    int side = 1 + (i % 2);
    combined.Update(e, side);
    (i < 150 ? part1 : part2).Update(e, side);
  }
  ASSERT_TRUE(part1.Merge(part2).ok());
  EXPECT_EQ(part1.Estimate(), combined.Estimate());
}

class L0AccuracySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(L0AccuracySweep, WithinConstantFactor) {
  const size_t d = GetParam();
  L0Estimator::Params params;
  params.seed = 6;
  // Median over trials keeps the test deterministic-stable.
  std::vector<uint64_t> estimates;
  for (uint64_t trial = 0; trial < 5; ++trial) {
    estimates.push_back(
        EstimateDifference<L0Estimator>(params, 3000, d, 7000 + trial));
  }
  std::sort(estimates.begin(), estimates.end());
  uint64_t med = estimates[2];
  // Theorem 3.1 promises a constant factor; we assert a factor of 4.
  EXPECT_GE(med, d / 4) << d;
  EXPECT_LE(med, d * 4) << d;
}

INSTANTIATE_TEST_SUITE_P(Diffs, L0AccuracySweep,
                         ::testing::Values(4, 16, 64, 256, 1024, 4096));

TEST(L0EstimatorTest, UpdateBatchMatchesPerElementUpdates) {
  L0Estimator::Params params;
  params.seed = 21;
  ExpectBatchMatchesPerElement<L0Estimator>(params);
}

TEST(StrataEstimatorTest, UpdateBatchMatchesPerElementUpdates) {
  StrataEstimator::Params params;
  params.seed = 22;
  ExpectBatchMatchesPerElement<StrataEstimator>(params);
}

TEST(StrataEstimatorTest, ZeroDifferenceIsZero) {
  StrataEstimator::Params params;
  params.seed = 7;
  EXPECT_EQ(EstimateDifference<StrataEstimator>(params, 3000, 0, 21), 0u);
}

TEST(StrataEstimatorTest, SmallDifferencesNearExact) {
  StrataEstimator::Params params;
  params.seed = 8;
  for (size_t d : {1u, 3u, 7u}) {
    uint64_t est =
        EstimateDifference<StrataEstimator>(params, 2000, d, 200 + d);
    EXPECT_GE(est, d / 2) << d;
    EXPECT_LE(est, 2 * d + 2) << d;
  }
}

TEST(StrataEstimatorTest, SerializationRoundTrip) {
  StrataEstimator::Params params;
  params.seed = 9;
  StrataEstimator est(params);
  for (uint64_t i = 0; i < 64; ++i) est.Update(i * 3, 1);
  ByteWriter writer;
  est.Serialize(&writer);
  EXPECT_EQ(writer.size(), est.SerializedSize());
  ByteReader reader(writer.bytes());
  Result<StrataEstimator> restored =
      StrataEstimator::Deserialize(&reader, params);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().Estimate(), est.Estimate());
}

class StrataAccuracySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(StrataAccuracySweep, WithinConstantFactor) {
  const size_t d = GetParam();
  StrataEstimator::Params params;
  params.seed = 10;
  std::vector<uint64_t> estimates;
  for (uint64_t trial = 0; trial < 5; ++trial) {
    estimates.push_back(
        EstimateDifference<StrataEstimator>(params, 2000, d, 9000 + trial));
  }
  std::sort(estimates.begin(), estimates.end());
  uint64_t med = estimates[2];
  EXPECT_GE(med, d / 4) << d;
  EXPECT_LE(med, d * 4) << d;
}

INSTANTIATE_TEST_SUITE_P(Diffs, StrataAccuracySweep,
                         ::testing::Values(4, 16, 64, 256, 1024));

TEST(EstimatorComparisonTest, L0IsSmallerThanStrata) {
  // The Theorem 3.1 claim vs [14]: the l0 sketch drops the O(log u) key
  // factor. With default parameters the message should be much smaller.
  L0Estimator::Params l0_params;
  StrataEstimator::Params strata_params;
  L0Estimator l0(l0_params);
  StrataEstimator strata(strata_params);
  EXPECT_LT(l0.SerializedSize(), strata.SerializedSize() / 2);
}

}  // namespace
}  // namespace setrec
