// Tests for the arena-backed view decode API: view/Materialize equivalence
// on randomized blob keys, the zero-allocation guarantee of warm scratch
// decodes, the transparent byte-key comparator, and adversarial (truncated)
// IBLT serializations.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "bench/alloc_counter.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "util/serialization.h"

namespace setrec {
namespace {

std::vector<uint8_t> RandomKey(size_t width, Rng* rng) {
  std::vector<uint8_t> key(width);
  for (auto& b : key) b = static_cast<uint8_t>(rng->NextU64());
  return key;
}

TEST(IbltViewTest, ViewsMatchMaterializeAndOwningDecode) {
  for (size_t width : {8ul, 20ul, 36ul}) {
    for (size_t d : {1ul, 10ul, 200ul}) {
      IbltConfig config =
          IbltConfig::ForDifference(d, 500 + d + width, width);
      Iblt table(config);
      Rng rng(d * 97 + width);
      for (size_t i = 0; i < d; ++i) table.Insert(RandomKey(width, &rng));
      for (size_t i = 0; i < d / 2; ++i) table.Erase(RandomKey(width, &rng));

      DecodeScratch scratch;
      Result<IbltDecodeView> view = table.Decode(&scratch);
      Result<IbltDecodeResult> owning = table.Decode();
      ASSERT_EQ(view.ok(), owning.ok()) << "width=" << width << " d=" << d;
      if (!view.ok()) continue;  // Rare unlucky seed: both failed alike.

      // The peel order is deterministic, so views, their materialization,
      // and the owning decode must agree element for element.
      IbltDecodeResult materialized = view.value().Materialize();
      EXPECT_EQ(materialized.positive, owning.value().positive);
      EXPECT_EQ(materialized.negative, owning.value().negative);
      ASSERT_EQ(view.value().positive.size(), owning.value().positive.size());
      for (size_t i = 0; i < view.value().positive.size(); ++i) {
        EXPECT_TRUE(view.value().positive[i] == owning.value().positive[i]);
        EXPECT_EQ(view.value().positive[i].size, width);
      }
      ASSERT_EQ(view.value().negative.size(), owning.value().negative.size());
      for (size_t i = 0; i < view.value().negative.size(); ++i) {
        EXPECT_TRUE(view.value().negative[i] == owning.value().negative[i]);
      }
    }
  }
}

TEST(IbltViewTest, PartialDecodeViewsMatchOwning) {
  // Overloaded table: the partial decode must report the same (incomplete)
  // drain through both APIs.
  IbltConfig config = IbltConfig::ForDifference(2, 11, /*key_width=*/20);
  Iblt table(config);
  Rng rng(321);
  for (int i = 0; i < 300; ++i) table.Insert(RandomKey(20, &rng));

  DecodeScratch scratch;
  IbltPartialDecodeView view = table.DecodePartial(&scratch);
  IbltPartialDecode owning = table.DecodePartial();
  EXPECT_EQ(view.complete, owning.complete);
  IbltDecodeResult materialized = view.entries.Materialize();
  EXPECT_EQ(materialized.positive, owning.entries.positive);
  EXPECT_EQ(materialized.negative, owning.entries.negative);
}

TEST(IbltViewTest, WarmBlobDecodeIsAllocationFree) {
  const size_t width = 36;
  IbltConfig config = IbltConfig::ForDifference(128, 77, width);
  Iblt table(config);
  Rng rng(42);
  for (int i = 0; i < 128; ++i) table.Insert(RandomKey(width, &rng));
  for (int i = 0; i < 64; ++i) table.Erase(RandomKey(width, &rng));

  DecodeScratch scratch;
  Result<IbltDecodeView> warmup = table.Decode(&scratch);
  ASSERT_TRUE(warmup.ok()) << warmup.status().ToString();
  const size_t expect_pos = warmup.value().positive.size();
  const size_t expect_neg = warmup.value().negative.size();

  size_t allocs;
  {
    AllocationWindow window;
    Result<IbltDecodeView> decoded = table.Decode(&scratch);
    allocs = window.count();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().positive.size(), expect_pos);
    EXPECT_EQ(decoded.value().negative.size(), expect_neg);
  }
  EXPECT_EQ(allocs, 0u) << "warm blob-key decode must not hit the allocator";
}

TEST(IbltViewTest, WarmPartialDecodeIsAllocationFree) {
  // Even a failing (partial) decode stays allocation-free once warm — the
  // cascading protocol's steady state is exactly this.
  IbltConfig config = IbltConfig::ForDifference(4, 13, /*key_width=*/20);
  Iblt table(config);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) table.Insert(RandomKey(20, &rng));

  DecodeScratch scratch;
  (void)table.DecodePartial(&scratch);  // Warm-up.
  size_t allocs;
  {
    AllocationWindow window;
    IbltPartialDecodeView out = table.DecodePartial(&scratch);
    allocs = window.count();
    EXPECT_FALSE(out.complete);
  }
  EXPECT_EQ(allocs, 0u);
}

TEST(IbltViewTest, ScratchReuseAcrossConfigsKeepsViewsConsistent) {
  // Decode table A, hold nothing; decode table B of a different config
  // through the same scratch; B's views must describe B alone.
  IbltConfig config_a = IbltConfig::ForDifference(32, 1, /*key_width=*/16);
  IbltConfig config_b = IbltConfig::ForDifference(4, 2, /*key_width=*/40);
  Iblt a(config_a), b(config_b);
  Rng rng(5);
  for (int i = 0; i < 32; ++i) a.Insert(RandomKey(16, &rng));
  std::vector<uint8_t> b_key = RandomKey(40, &rng);
  b.Insert(b_key);

  DecodeScratch scratch;
  ASSERT_TRUE(a.Decode(&scratch).ok());
  Result<IbltDecodeView> decoded_b = b.Decode(&scratch);
  ASSERT_TRUE(decoded_b.ok());
  ASSERT_EQ(decoded_b.value().positive.size(), 1u);
  EXPECT_TRUE(decoded_b.value().positive[0] == b_key);
}

TEST(IbltViewTest, U64ViewMatchesOwningDecode) {
  for (size_t d : {1ul, 10ul, 300ul}) {
    IbltConfig config = IbltConfig::ForDifference(d, 900 + d);
    Iblt table(config);
    Rng rng(d * 31 + 5);
    for (size_t i = 0; i < d; ++i) table.InsertU64(rng.NextU64());
    for (size_t i = 0; i < d / 3; ++i) table.EraseU64(rng.NextU64());

    DecodeScratch scratch;
    Result<IbltDecodeView64> view = table.DecodeU64View(&scratch);
    Result<IbltDecodeResult64> owning = table.DecodeU64();
    ASSERT_EQ(view.ok(), owning.ok()) << "d=" << d;
    if (!view.ok()) continue;
    // Both run the same deterministic peel; the byte-mode arena stages keys
    // in the identical order, so the sides must agree element for element.
    IbltDecodeResult64 materialized = view.value().Materialize();
    EXPECT_EQ(materialized.positive, owning.value().positive);
    EXPECT_EQ(materialized.negative, owning.value().negative);
  }
}

TEST(IbltViewTest, WarmU64ViewDecodeIsAllocationFree) {
  IbltConfig config = IbltConfig::ForDifference(256, 123);
  Iblt table(config);
  Rng rng(7);
  for (int i = 0; i < 256; ++i) table.InsertU64(rng.NextU64());
  for (int i = 0; i < 128; ++i) table.EraseU64(rng.NextU64());

  DecodeScratch scratch;
  Result<IbltDecodeView64> warmup = table.DecodeU64View(&scratch);
  ASSERT_TRUE(warmup.ok()) << warmup.status().ToString();
  const size_t expect_pos = warmup.value().positive.size();
  const size_t expect_neg = warmup.value().negative.size();

  // The owning DecodeU64 pays capacity-growth allocations per call (the
  // ROADMAP item this API closes); the view path must be clean.
  size_t allocs;
  {
    AllocationWindow window;
    Result<IbltDecodeView64> decoded = table.DecodeU64View(&scratch);
    allocs = window.count();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().positive.size(), expect_pos);
    EXPECT_EQ(decoded.value().negative.size(), expect_neg);
  }
  EXPECT_EQ(allocs, 0u) << "warm u64 view decode must not hit the allocator";
}

TEST(IbltKeyViewTest, TransparentMapLookup) {
  std::map<std::vector<uint8_t>, int, KeyBytesLess> m;
  m[{1, 2, 3}] = 1;
  m[{1, 2, 4}] = 2;
  m[{1, 2}] = 3;

  const uint8_t raw[3] = {1, 2, 4};
  auto it = m.find(IbltKeyView{raw, 3});
  ASSERT_NE(it, m.end());
  EXPECT_EQ(it->second, 2);
  EXPECT_NE(m.find(IbltKeyView{raw, 2}), m.end());  // Prefix is its own key.
  const uint8_t missing[3] = {9, 9, 9};
  EXPECT_EQ(m.find(IbltKeyView{missing, 3}), m.end());

  // View-keyed maps probed with owned vectors (the naive protocol's shape).
  std::map<IbltKeyView, int, KeyBytesLess> by_view;
  by_view[IbltKeyView{raw, 3}] = 7;
  EXPECT_NE(by_view.find(std::vector<uint8_t>{1, 2, 4}), by_view.end());
  EXPECT_EQ(by_view.find(std::vector<uint8_t>{1, 2, 5}), by_view.end());
}

TEST(IbltAdversarialTest, TruncatedCompactCellsRejected) {
  IbltConfig config = IbltConfig::ForDifference(6, 33, /*key_width=*/12);
  Iblt table(config);
  Rng rng(11);
  for (int i = 0; i < 6; ++i) table.Insert(RandomKey(12, &rng));
  ByteWriter writer;
  table.Serialize(&writer);
  const std::vector<uint8_t>& bytes = writer.bytes();

  // Every proper prefix must fail cleanly with kParseError, whichever cell
  // field (count varint, checksum, key bytes) the cut lands in.
  for (size_t cut : {size_t{0}, size_t{1}, size_t{5}, bytes.size() / 3,
                     bytes.size() / 2, bytes.size() - 1}) {
    ByteReader reader(bytes.data(), cut);
    Result<Iblt> restored = Iblt::Deserialize(&reader, config);
    ASSERT_FALSE(restored.ok()) << "cut=" << cut;
    EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  }
  ByteReader full(bytes);
  EXPECT_TRUE(Iblt::Deserialize(&full, config).ok());
}

TEST(IbltAdversarialTest, TruncatedFixedCellsRejected) {
  IbltConfig config = IbltConfig::ForDifference(5, 44, /*key_width=*/10);
  Iblt table(config);
  Rng rng(17);
  for (int i = 0; i < 5; ++i) table.Insert(RandomKey(10, &rng));
  ByteWriter writer;
  table.SerializeFixed(&writer);
  const std::vector<uint8_t>& bytes = writer.bytes();
  ASSERT_EQ(bytes.size(), config.FixedSerializedSize());

  for (size_t cut : {size_t{0}, size_t{3}, size_t{4}, size_t{11},
                     bytes.size() - 1}) {
    ByteReader reader(bytes.data(), cut);
    Result<Iblt> restored = Iblt::DeserializeFixed(&reader, config);
    ASSERT_FALSE(restored.ok()) << "cut=" << cut;
    EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  }
}

TEST(IbltAdversarialTest, CorruptCountVarintRejected) {
  // A cell count varint that overflows 64 bits must be a parse error, not
  // a silently-wrong count.
  IbltConfig config;
  config.cells = 4;
  config.num_hashes = 2;
  config.key_width = 8;
  config.seed = 3;
  std::vector<uint8_t> bad(10, 0x80);
  bad[9] = 0x7f;  // Ten-byte varint with payload past bit 63.
  ByteReader reader(bad);
  Result<Iblt> restored = Iblt::Deserialize(&reader, config);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace setrec
