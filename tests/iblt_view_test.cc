// Tests for the arena-backed view decode API: view/Materialize equivalence
// on randomized blob keys, the zero-allocation guarantee of warm scratch
// decodes, the transparent byte-key comparator, and adversarial (truncated)
// IBLT serializations.

#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <vector>

#include "bench/alloc_counter.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "util/serialization.h"

namespace setrec {
namespace {

std::vector<uint8_t> RandomKey(size_t width, Rng* rng) {
  std::vector<uint8_t> key(width);
  for (auto& b : key) b = static_cast<uint8_t>(rng->NextU64());
  return key;
}

TEST(IbltViewTest, ViewsMatchMaterializeAndOwningDecode) {
  for (size_t width : {8ul, 20ul, 36ul}) {
    for (size_t d : {1ul, 10ul, 200ul}) {
      IbltConfig config =
          IbltConfig::ForDifference(d, 500 + d + width, width);
      Iblt table(config);
      Rng rng(d * 97 + width);
      for (size_t i = 0; i < d; ++i) table.Insert(RandomKey(width, &rng));
      for (size_t i = 0; i < d / 2; ++i) table.Erase(RandomKey(width, &rng));

      DecodeScratch scratch;
      Result<IbltDecodeView> view = table.Decode(&scratch);
      Result<IbltDecodeResult> owning = table.Decode();
      ASSERT_EQ(view.ok(), owning.ok()) << "width=" << width << " d=" << d;
      if (!view.ok()) continue;  // Rare unlucky seed: both failed alike.

      // The peel order is deterministic, so views, their materialization,
      // and the owning decode must agree element for element.
      IbltDecodeResult materialized = view.value().Materialize();
      EXPECT_EQ(materialized.positive, owning.value().positive);
      EXPECT_EQ(materialized.negative, owning.value().negative);
      ASSERT_EQ(view.value().positive.size(), owning.value().positive.size());
      for (size_t i = 0; i < view.value().positive.size(); ++i) {
        EXPECT_TRUE(view.value().positive[i] == owning.value().positive[i]);
        EXPECT_EQ(view.value().positive[i].size, width);
      }
      ASSERT_EQ(view.value().negative.size(), owning.value().negative.size());
      for (size_t i = 0; i < view.value().negative.size(); ++i) {
        EXPECT_TRUE(view.value().negative[i] == owning.value().negative[i]);
      }
    }
  }
}

TEST(IbltViewTest, PartialDecodeViewsMatchOwning) {
  // Overloaded table: the partial decode must report the same (incomplete)
  // drain through both APIs.
  IbltConfig config = IbltConfig::ForDifference(2, 11, /*key_width=*/20);
  Iblt table(config);
  Rng rng(321);
  for (int i = 0; i < 300; ++i) table.Insert(RandomKey(20, &rng));

  DecodeScratch scratch;
  IbltPartialDecodeView view = table.DecodePartial(&scratch);
  IbltPartialDecode owning = table.DecodePartial();
  EXPECT_EQ(view.complete, owning.complete);
  IbltDecodeResult materialized = view.entries.Materialize();
  EXPECT_EQ(materialized.positive, owning.entries.positive);
  EXPECT_EQ(materialized.negative, owning.entries.negative);
}

TEST(IbltViewTest, WarmBlobDecodeIsAllocationFree) {
  const size_t width = 36;
  IbltConfig config = IbltConfig::ForDifference(128, 77, width);
  Iblt table(config);
  Rng rng(42);
  for (int i = 0; i < 128; ++i) table.Insert(RandomKey(width, &rng));
  for (int i = 0; i < 64; ++i) table.Erase(RandomKey(width, &rng));

  DecodeScratch scratch;
  Result<IbltDecodeView> warmup = table.Decode(&scratch);
  ASSERT_TRUE(warmup.ok()) << warmup.status().ToString();
  const size_t expect_pos = warmup.value().positive.size();
  const size_t expect_neg = warmup.value().negative.size();

  size_t allocs;
  {
    AllocationWindow window;
    Result<IbltDecodeView> decoded = table.Decode(&scratch);
    allocs = window.count();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().positive.size(), expect_pos);
    EXPECT_EQ(decoded.value().negative.size(), expect_neg);
  }
  EXPECT_EQ(allocs, 0u) << "warm blob-key decode must not hit the allocator";
}

TEST(IbltViewTest, WarmPartialDecodeIsAllocationFree) {
  // Even a failing (partial) decode stays allocation-free once warm — the
  // cascading protocol's steady state is exactly this.
  IbltConfig config = IbltConfig::ForDifference(4, 13, /*key_width=*/20);
  Iblt table(config);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) table.Insert(RandomKey(20, &rng));

  DecodeScratch scratch;
  (void)table.DecodePartial(&scratch);  // Warm-up.
  size_t allocs;
  {
    AllocationWindow window;
    IbltPartialDecodeView out = table.DecodePartial(&scratch);
    allocs = window.count();
    EXPECT_FALSE(out.complete);
  }
  EXPECT_EQ(allocs, 0u);
}

TEST(IbltViewTest, ScratchReuseAcrossConfigsKeepsViewsConsistent) {
  // Decode table A, hold nothing; decode table B of a different config
  // through the same scratch; B's views must describe B alone.
  IbltConfig config_a = IbltConfig::ForDifference(32, 1, /*key_width=*/16);
  IbltConfig config_b = IbltConfig::ForDifference(4, 2, /*key_width=*/40);
  Iblt a(config_a), b(config_b);
  Rng rng(5);
  for (int i = 0; i < 32; ++i) a.Insert(RandomKey(16, &rng));
  std::vector<uint8_t> b_key = RandomKey(40, &rng);
  b.Insert(b_key);

  DecodeScratch scratch;
  ASSERT_TRUE(a.Decode(&scratch).ok());
  Result<IbltDecodeView> decoded_b = b.Decode(&scratch);
  ASSERT_TRUE(decoded_b.ok());
  ASSERT_EQ(decoded_b.value().positive.size(), 1u);
  EXPECT_TRUE(decoded_b.value().positive[0] == b_key);
}

TEST(IbltViewTest, U64ViewMatchesOwningDecode) {
  for (size_t d : {1ul, 10ul, 300ul}) {
    IbltConfig config = IbltConfig::ForDifference(d, 900 + d);
    Iblt table(config);
    Rng rng(d * 31 + 5);
    for (size_t i = 0; i < d; ++i) table.InsertU64(rng.NextU64());
    for (size_t i = 0; i < d / 3; ++i) table.EraseU64(rng.NextU64());

    DecodeScratch scratch;
    Result<IbltDecodeView64> view = table.DecodeU64View(&scratch);
    Result<IbltDecodeResult64> owning = table.DecodeU64();
    ASSERT_EQ(view.ok(), owning.ok()) << "d=" << d;
    if (!view.ok()) continue;
    // Both run the same deterministic peel; the byte-mode arena stages keys
    // in the identical order, so the sides must agree element for element.
    IbltDecodeResult64 materialized = view.value().Materialize();
    EXPECT_EQ(materialized.positive, owning.value().positive);
    EXPECT_EQ(materialized.negative, owning.value().negative);
  }
}

TEST(IbltViewTest, WarmU64ViewDecodeIsAllocationFree) {
  IbltConfig config = IbltConfig::ForDifference(256, 123);
  Iblt table(config);
  Rng rng(7);
  for (int i = 0; i < 256; ++i) table.InsertU64(rng.NextU64());
  for (int i = 0; i < 128; ++i) table.EraseU64(rng.NextU64());

  DecodeScratch scratch;
  Result<IbltDecodeView64> warmup = table.DecodeU64View(&scratch);
  ASSERT_TRUE(warmup.ok()) << warmup.status().ToString();
  const size_t expect_pos = warmup.value().positive.size();
  const size_t expect_neg = warmup.value().negative.size();

  // The owning DecodeU64 pays capacity-growth allocations per call (the
  // ROADMAP item this API closes); the view path must be clean.
  size_t allocs;
  {
    AllocationWindow window;
    Result<IbltDecodeView64> decoded = table.DecodeU64View(&scratch);
    allocs = window.count();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().positive.size(), expect_pos);
    EXPECT_EQ(decoded.value().negative.size(), expect_neg);
  }
  EXPECT_EQ(allocs, 0u) << "warm u64 view decode must not hit the allocator";
}

TEST(IbltKeyViewTest, TransparentMapLookup) {
  std::map<std::vector<uint8_t>, int, KeyBytesLess> m;
  m[{1, 2, 3}] = 1;
  m[{1, 2, 4}] = 2;
  m[{1, 2}] = 3;

  const uint8_t raw[3] = {1, 2, 4};
  auto it = m.find(IbltKeyView{raw, 3});
  ASSERT_NE(it, m.end());
  EXPECT_EQ(it->second, 2);
  EXPECT_NE(m.find(IbltKeyView{raw, 2}), m.end());  // Prefix is its own key.
  const uint8_t missing[3] = {9, 9, 9};
  EXPECT_EQ(m.find(IbltKeyView{missing, 3}), m.end());

  // View-keyed maps probed with owned vectors (the naive protocol's shape).
  std::map<IbltKeyView, int, KeyBytesLess> by_view;
  by_view[IbltKeyView{raw, 3}] = 7;
  EXPECT_NE(by_view.find(std::vector<uint8_t>{1, 2, 4}), by_view.end());
  EXPECT_EQ(by_view.find(std::vector<uint8_t>{1, 2, 5}), by_view.end());
}

TEST(IbltAdversarialTest, TruncatedCompactCellsRejected) {
  IbltConfig config = IbltConfig::ForDifference(6, 33, /*key_width=*/12);
  Iblt table(config);
  Rng rng(11);
  for (int i = 0; i < 6; ++i) table.Insert(RandomKey(12, &rng));
  ByteWriter writer;
  table.Serialize(&writer);
  const std::vector<uint8_t>& bytes = writer.bytes();

  // Every proper prefix must fail cleanly with kParseError, whichever cell
  // field (count varint, checksum, key bytes) the cut lands in.
  for (size_t cut : {size_t{0}, size_t{1}, size_t{5}, bytes.size() / 3,
                     bytes.size() / 2, bytes.size() - 1}) {
    ByteReader reader(bytes.data(), cut);
    Result<Iblt> restored = Iblt::Deserialize(&reader, config);
    ASSERT_FALSE(restored.ok()) << "cut=" << cut;
    EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  }
  ByteReader full(bytes);
  EXPECT_TRUE(Iblt::Deserialize(&full, config).ok());
}

TEST(IbltAdversarialTest, TruncatedFixedCellsRejected) {
  IbltConfig config = IbltConfig::ForDifference(5, 44, /*key_width=*/10);
  Iblt table(config);
  Rng rng(17);
  for (int i = 0; i < 5; ++i) table.Insert(RandomKey(10, &rng));
  ByteWriter writer;
  table.SerializeFixed(&writer);
  const std::vector<uint8_t>& bytes = writer.bytes();
  ASSERT_EQ(bytes.size(), config.FixedSerializedSize());

  for (size_t cut : {size_t{0}, size_t{3}, size_t{4}, size_t{11},
                     bytes.size() - 1}) {
    ByteReader reader(bytes.data(), cut);
    Result<Iblt> restored = Iblt::DeserializeFixed(&reader, config);
    ASSERT_FALSE(restored.ok()) << "cut=" << cut;
    EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  }
}

// --- Sparse wire codec (WireCodec::kSparse) adversarial frames. Each test
// corrupts one section of a valid frame; DeserializeSparse must fail closed
// with kParseError on every malformed prefix, never return a wrong table.

// A bitmap-mode sparse frame with its section offsets recovered by walking
// the layout: mode | occupancy bitmap | count crumbs | escape list |
// 8-byte checks | masked keys. (Escape entries appear whenever hashed
// keys collide into a shared cell, so the fixture parses the escape
// section rather than assuming it empty.)
struct SparseFrameFixture {
  IbltConfig config;
  Iblt table;
  std::vector<uint8_t> bytes;
  size_t bitmap_size;
  size_t occupied;
  size_t crumb_bytes;
  size_t checks_begin;  // Offset of the first check byte.
  size_t keys_begin;    // Offset of the first key mask byte.

  explicit SparseFrameFixture(size_t num_keys, uint64_t seed)
      : config{IbltConfig::ForDifference(num_keys + 4, seed,
                                         /*key_width=*/8)},
        table(config) {
    Rng rng(seed);
    for (size_t i = 0; i < num_keys; ++i) table.Insert(RandomKey(8, &rng));
    ByteWriter writer;
    table.SerializeSparse(&writer);
    bytes = writer.bytes();
    EXPECT_EQ(bytes[0], 1) << "fixture must emit a bitmap-mode frame";
    bitmap_size = (config.PaddedCells() + 7) / 8;
    occupied = 0;
    for (size_t i = 0; i < bitmap_size; ++i) {
      occupied += static_cast<size_t>(std::popcount(bytes[1 + i]));
    }
    crumb_bytes = (occupied + 3) / 4;
    size_t off = 1 + bitmap_size + crumb_bytes;
    uint64_t num_escapes = 0;
    off = SkipVarint(off, &num_escapes);
    for (uint64_t e = 0; e < num_escapes; ++e) {
      off = SkipVarint(off, nullptr);  // Occupied ordinal.
      off = SkipVarint(off, nullptr);  // Zigzag count.
    }
    checks_begin = off;
    keys_begin = checks_begin + 8 * occupied;
  }

  // Code of the ord-th occupied cell's 2-bit count crumb.
  uint8_t CountCode(size_t ord) const {
    return (bytes[1 + bitmap_size + ord / 4] >> (2 * (ord % 4))) & 0x3;
  }

  size_t SkipVarint(size_t off, uint64_t* value) const {
    uint64_t v = 0;
    int shift = 0;
    while (bytes[off] & 0x80) {
      v |= static_cast<uint64_t>(bytes[off] & 0x7f) << shift;
      shift += 7;
      ++off;
    }
    v |= static_cast<uint64_t>(bytes[off]) << shift;
    ++off;
    if (value != nullptr) *value = v;
    return off;
  }

  Result<Iblt> Decode(const std::vector<uint8_t>& frame) const {
    ByteReader reader(frame);
    return Iblt::DeserializeSparse(&reader, config);
  }
};

TEST(IbltSparseAdversarialTest, TruncatedOccupancyBitmapRejected) {
  SparseFrameFixture fx(9, 101);
  for (size_t cut = 0; cut <= fx.bitmap_size; ++cut) {
    std::vector<uint8_t> frame(
        fx.bytes.begin(),
        fx.bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    Result<Iblt> restored = fx.Decode(frame);
    ASSERT_FALSE(restored.ok()) << "cut=" << cut;
    EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  }
}

TEST(IbltSparseAdversarialTest, EveryProperPrefixRejected) {
  // The blanket guarantee behind the section-specific tests: no proper
  // prefix of a valid frame parses, whichever section the cut lands in.
  SparseFrameFixture fx(11, 202);
  for (size_t cut = 0; cut < fx.bytes.size(); ++cut) {
    std::vector<uint8_t> frame(
        fx.bytes.begin(),
        fx.bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    Result<Iblt> restored = fx.Decode(frame);
    ASSERT_FALSE(restored.ok()) << "cut=" << cut;
    EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  }
  EXPECT_TRUE(fx.Decode(fx.bytes).ok());
}

TEST(IbltSparseAdversarialTest, StrayOccupancyBitsRejected) {
  SparseFrameFixture fx(5, 303);
  ASSERT_NE(fx.config.PaddedCells() % 8, 0u)
      << "fixture needs a partial final bitmap byte";
  std::vector<uint8_t> frame = fx.bytes;
  frame[fx.bitmap_size] |= 0x80;  // Bit past the last cell.
  Result<Iblt> restored = fx.Decode(frame);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
}

TEST(IbltSparseAdversarialTest, CorruptPackedCountCrumbsRejected) {
  SparseFrameFixture fx(9, 404);
  ASSERT_NE(fx.occupied % 4, 0u)
      << "fixture needs unused crumbs in the last count byte";
  // Stray codes past the last occupied cell.
  std::vector<uint8_t> tail = fx.bytes;
  tail[1 + fx.bitmap_size + fx.crumb_bytes - 1] |= 0xc0;
  Result<Iblt> restored = fx.Decode(tail);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);

  // An escape code (3) injected at a non-escape position desynchronizes
  // the escape list: either an entry's ordinal no longer matches, or the
  // extra code is left without an entry. Both must be rejected.
  std::vector<uint8_t> orphan = fx.bytes;
  size_t target = fx.occupied;
  for (size_t ord = 0; ord < fx.occupied; ++ord) {
    if (fx.CountCode(ord) != 0x3) {
      orphan[1 + fx.bitmap_size + ord / 4] |=
          static_cast<uint8_t>(0x3 << (2 * (ord % 4)));
      target = ord;
      break;
    }
  }
  ASSERT_LT(target, fx.occupied) << "fixture has a non-escape cell";
  restored = fx.Decode(orphan);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
}

TEST(IbltSparseAdversarialTest, EscapeListIndexOutOfRangeRejected) {
  // Build a frame that genuinely has one escape entry (a doubled key makes
  // |count| = 2 in its cells), then point its ordinal past the occupied
  // range and at the wrong position.
  IbltConfig config = IbltConfig::ForDifference(8, 55, /*key_width=*/8);
  Iblt table(config);
  Rng rng(55);
  std::vector<uint8_t> doubled = RandomKey(8, &rng);
  table.Insert(doubled);
  table.Insert(doubled);
  ByteWriter writer;
  table.SerializeSparse(&writer);
  std::vector<uint8_t> bytes = writer.bytes();
  ASSERT_EQ(bytes[0], 1);
  const size_t bitmap_size = (config.PaddedCells() + 7) / 8;
  size_t occupied = 0;
  for (size_t i = 0; i < bitmap_size; ++i) {
    occupied += static_cast<size_t>(std::popcount(bytes[1 + i]));
  }
  ASSERT_LT(occupied, 127u) << "single-byte ordinal varints expected";
  const size_t escape_count_at = 1 + bitmap_size + (occupied + 3) / 4;
  ASSERT_GT(bytes[escape_count_at], 0) << "fixture must have escapes";
  const size_t first_ordinal_at = escape_count_at + 1;

  std::vector<uint8_t> out_of_range = bytes;
  out_of_range[first_ordinal_at] = 0x7f;  // 127 >= occupied: out of range.
  ByteReader oor_reader(out_of_range);
  Result<Iblt> restored = Iblt::DeserializeSparse(&oor_reader, config);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);

  // In range but not the next escape-coded position: index mismatch.
  std::vector<uint8_t> mismatched = bytes;
  mismatched[first_ordinal_at] = static_cast<uint8_t>(occupied - 1);
  ByteReader mismatch_reader(mismatched);
  restored = Iblt::DeserializeSparse(&mismatch_reader, config);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
}

TEST(IbltSparseAdversarialTest, KeyMaskClaimsMoreThanRemainingRejected) {
  SparseFrameFixture fx(7, 505);
  // First key's mask byte claims all 8 payload bytes, but the frame ends
  // after three of them: payload length > remaining must fail closed.
  std::vector<uint8_t> frame(
      fx.bytes.begin(),
      fx.bytes.begin() + static_cast<std::ptrdiff_t>(fx.keys_begin));
  frame.push_back(0xff);
  frame.insert(frame.end(), {0x01, 0x02, 0x03});
  Result<Iblt> restored = fx.Decode(frame);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
}

TEST(IbltSparseAdversarialTest, OccupiedCellDecodingToZeroRejected) {
  // A bitmap bit whose cell then decodes to all-zero contradicts the
  // occupancy claim; accepting it would let two encodings of one table
  // differ on the wire.
  IbltConfig config;
  config.cells = 8;
  config.num_hashes = 4;
  config.key_width = 8;
  config.seed = 9;
  ByteWriter writer;
  writer.PutU8(1);     // Mode: bitmap.
  writer.PutU8(0x01);  // Cell 0 claimed occupied.
  writer.PutU8(0x02);  // Count code kCountZero for it.
  writer.PutU8(0x00);  // No escapes.
  writer.PutU64(0);    // Zero check.
  writer.PutU8(0x00);  // Key mask: all-zero key.
  ByteReader reader(writer.bytes());
  Result<Iblt> restored = Iblt::DeserializeSparse(&reader, config);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
}

TEST(IbltSparseAdversarialTest, UnknownModeByteRejected) {
  SparseFrameFixture fx(4, 606);
  std::vector<uint8_t> frame = fx.bytes;
  frame[0] = 3;
  Result<Iblt> restored = fx.Decode(frame);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
}

TEST(IbltSparseAdversarialTest, DeltaFrameWithoutLineageRejected) {
  // A delta frame can only be applied against a retained parent of the
  // same config; without one the decoder must refuse rather than guess.
  IbltConfig config = IbltConfig::ForDifference(4, 77, /*key_width=*/8);
  Iblt parent(config);
  Rng rng(77);
  parent.Insert(RandomKey(8, &rng));
  Iblt child = parent;
  child.Insert(RandomKey(8, &rng));
  ByteWriter writer;
  child.SerializeDelta(parent, &writer);

  ByteReader no_lineage(writer.bytes());
  Result<Iblt> restored = Iblt::DeserializeSparse(&no_lineage, config);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);

  // Lineage of a DIFFERENT config is just as invalid.
  IbltConfig other = config;
  other.seed ^= 1;
  Iblt other_parent(other);
  ByteReader wrong_lineage(writer.bytes());
  restored = Iblt::DeserializeSparse(&wrong_lineage, config,
                                     TableLineage{&other_parent});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);

  // With the real parent the same frame round-trips.
  ByteReader good(writer.bytes());
  Result<Iblt> applied =
      Iblt::DeserializeSparse(&good, config, TableLineage{&parent});
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ByteWriter a, b;
  applied.value().SerializeFixed(&a);
  child.SerializeFixed(&b);
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(IbltAdversarialTest, CorruptCountVarintRejected) {
  // A cell count varint that overflows 64 bits must be a parse error, not
  // a silently-wrong count.
  IbltConfig config;
  config.cells = 4;
  config.num_hashes = 2;
  config.key_width = 8;
  config.seed = 3;
  std::vector<uint8_t> bad(10, 0x80);
  bad[9] = 0x7f;  // Ten-byte varint with payload past bit 63.
  ByteReader reader(bad);
  Result<Iblt> restored = Iblt::Deserialize(&reader, config);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace setrec
