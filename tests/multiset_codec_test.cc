#include "setrec/multiset_codec.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace setrec {
namespace {

TEST(MultisetCodecTest, SimpleRoundTrip) {
  MultisetCodec codec;
  std::vector<uint64_t> multiset = {5, 5, 5, 9, 9, 100};
  Result<std::vector<uint64_t>> encoded = codec.Encode(multiset);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded.value().size(), 3u);  // Three distinct values.
  Result<std::vector<uint64_t>> decoded = codec.Decode(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), multiset);
}

TEST(MultisetCodecTest, UnsortedInputHandled) {
  MultisetCodec codec;
  Result<std::vector<uint64_t>> a = codec.Encode({3, 1, 3, 2});
  Result<std::vector<uint64_t>> b = codec.Encode({1, 2, 3, 3});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(MultisetCodecTest, EmptyMultiset) {
  MultisetCodec codec;
  Result<std::vector<uint64_t>> encoded = codec.Encode({});
  ASSERT_TRUE(encoded.ok());
  EXPECT_TRUE(encoded.value().empty());
  Result<std::vector<uint64_t>> decoded = codec.Decode({});
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(MultisetCodecTest, SingleChangePreservesLocality) {
  // Section 3.4: one multiset change = one or two encoded-set changes.
  MultisetCodec codec;
  std::vector<uint64_t> before = {5, 5, 9};
  std::vector<uint64_t> after = {5, 5, 5, 9};  // One insertion.
  auto enc_before = codec.Encode(before).value();
  auto enc_after = codec.Encode(after).value();
  std::vector<uint64_t> sym;
  std::set_symmetric_difference(enc_before.begin(), enc_before.end(),
                                enc_after.begin(), enc_after.end(),
                                std::back_inserter(sym));
  EXPECT_EQ(sym.size(), 2u);  // (5,2) out, (5,3) in.
}

TEST(MultisetCodecTest, ValueRangeEnforced) {
  MultisetCodec codec;  // count_bits 16 -> values < 2^40.
  EXPECT_FALSE(codec.Encode({1ull << 40}).ok());
  EXPECT_TRUE(codec.Encode({(1ull << 40) - 1}).ok());
}

TEST(MultisetCodecTest, CountRangeEnforced) {
  MultisetCodec codec{/*count_bits=*/2};  // Counts up to 4.
  std::vector<uint64_t> four(4, 7);
  EXPECT_TRUE(codec.Encode(four).ok());
  std::vector<uint64_t> five(5, 7);
  EXPECT_FALSE(codec.Encode(five).ok());
}

TEST(MultisetCodecTest, DecodeRejectsOutOfRange) {
  MultisetCodec codec;
  EXPECT_FALSE(codec.Decode({kUserElementLimit}).ok());
}

TEST(MultisetCodecTest, CustomCountBits) {
  MultisetCodec codec{/*count_bits=*/8};
  std::vector<uint64_t> multiset(200, 42);  // Multiplicity 200 < 256.
  Result<std::vector<uint64_t>> encoded = codec.Encode(multiset);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded.value().size(), 1u);
  Result<std::vector<uint64_t>> decoded = codec.Decode(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), multiset);
}

TEST(NormalizeParentMultisetTest, UniqueChildrenUnchanged) {
  std::vector<std::vector<uint64_t>> children = {{1, 2}, {3}, {4, 5, 6}};
  auto normalized = NormalizeParentMultiset(children);
  EXPECT_EQ(normalized.size(), 3u);
  auto expanded = ExpandParentMultiset(normalized);
  ASSERT_TRUE(expanded.ok());
  std::sort(children.begin(), children.end());
  auto out = expanded.value();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, children);
}

TEST(NormalizeParentMultisetTest, DuplicatesCollapsed) {
  std::vector<std::vector<uint64_t>> children = {{1, 2}, {1, 2}, {1, 2}, {3}};
  auto normalized = NormalizeParentMultiset(children);
  EXPECT_EQ(normalized.size(), 2u);
  // The duplicated child carries a count marker.
  bool found_marker = false;
  for (const auto& child : normalized) {
    for (uint64_t e : child) {
      if (e == kDuplicateCountBase + 3) found_marker = true;
    }
  }
  EXPECT_TRUE(found_marker);
}

TEST(NormalizeParentMultisetTest, ExpandRestoresMultiplicity) {
  std::vector<std::vector<uint64_t>> children = {{7}, {7}, {8, 9}};
  auto expanded = ExpandParentMultiset(NormalizeParentMultiset(children));
  ASSERT_TRUE(expanded.ok());
  auto out = expanded.value();
  std::sort(out.begin(), out.end());
  std::sort(children.begin(), children.end());
  EXPECT_EQ(out, children);
}

TEST(NormalizeParentMultisetTest, EmptyChildSupported) {
  std::vector<std::vector<uint64_t>> children = {{}, {}, {1}};
  auto expanded = ExpandParentMultiset(NormalizeParentMultiset(children));
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded.value().size(), 3u);
}

TEST(ExpandParentMultisetTest, BadMarkerRejected) {
  // Count marker of 1 is never produced and must be rejected.
  std::vector<std::vector<uint64_t>> bad = {{kDuplicateCountBase + 1}};
  EXPECT_FALSE(ExpandParentMultiset(bad).ok());
}

TEST(ExpandParentMultisetTest, DoubleMarkerRejected) {
  std::vector<std::vector<uint64_t>> bad = {
      {kDuplicateCountBase + 2, kDuplicateCountBase + 3}};
  EXPECT_FALSE(ExpandParentMultiset(bad).ok());
}

TEST(ElementSpaceTest, RegionsAreDisjoint) {
  EXPECT_LT(kUserElementLimit, kDuplicateCountBase + 1);
  EXPECT_LT(kDuplicateCountBase, kParentMarkBase);
  EXPECT_LT(kParentMarkBase + (1ull << 48), 1ull << 60);
}

}  // namespace
}  // namespace setrec
